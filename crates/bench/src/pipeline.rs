//! The evaluation pipeline shared by every table experiment.
//!
//! 1. Train the adversary (SVM + NN ensemble) on *original*, un-defended
//!    traffic, cut into eavesdropping windows of `W` seconds.
//! 2. Apply a defense to each evaluation trace, producing the sub-flows the
//!    adversary actually observes (one per virtual interface / channel / MAC
//!    pseudonym, or the trace itself when no defense is active).
//! 3. Window each observed sub-flow, classify every window, and score the
//!    prediction against the ground-truth application of the original trace.
//!
//! That is exactly the paper's methodology: the adversary knows what original
//! application traffic looks like, and the defense succeeds when per-interface
//! sub-flows no longer resemble it.
//!
//! Since the stage refactor there is exactly **one** defended data path:
//! [`defense_pipeline`] builds a streaming
//! [`StagePipeline`] for any [`DefenseKind`] — padding, morphing, pseudonyms,
//! frequency hopping, the reshaping schedulers, or compositions of them — and
//! [`defended_examples`] streams packets through it into one
//! [`StreamingWindower`] per emitted sub-flow, touching each packet exactly
//! once. There is no defense-specific batch plumbing left in the evaluation;
//! the batch wrappers survive only inside [`apply_defense`], which is kept as
//! the independent reference the equivalence tests check the streaming path
//! against.

use classifier::dataset::Dataset;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::features::FEATURE_DIM;
use classifier::metrics::ConfusionMatrix;
use classifier::online::{OnlineAdversary, PrequentialEvaluator, SegmentStats};
use classifier::stream::{FlowWindowers, WindowExample};
use classifier::window::{build_dataset, FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::frequency_hopping::FrequencyHopper;
use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::padding::PacketPadder;
use defenses::pseudonym::PseudonymRotator;
use defenses::stage::{FlowId, StagePipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::trace::Trace;

use crate::corpus::ExperimentConfig;

/// The defenses compared by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No defense: the adversary sees the original traffic.
    None,
    /// Frequency hopping over channels 1/6/11 with a 500 ms dwell.
    FrequencyHopping,
    /// Random assignment over virtual interfaces (RA).
    Random,
    /// Round-robin assignment over virtual interfaces (RR).
    RoundRobin,
    /// Orthogonal Reshaping over packet-size ranges (OR).
    Orthogonal,
    /// The size-modulo OR variant of Fig. 5.
    OrthogonalModulo,
    /// MAC pseudonym rotation (per-60 s address change).
    Pseudonym,
    /// Packet padding to the maximum packet size.
    Padding,
    /// Traffic morphing using the paper's application pairing.
    Morphing,
    /// The composed defense∘reshape scenario: morph toward the paper's
    /// pairing target first, then reshape the morphed stream with OR — a
    /// two-stage pipeline (§V-C's composition idea, streamed end to end).
    MorphThenReshape,
}

impl DefenseKind {
    /// The four scheduling algorithms of Tables II/III, in paper order
    /// (plus the undefended baseline first).
    pub const TABLE23: [DefenseKind; 5] = [
        DefenseKind::None,
        DefenseKind::FrequencyHopping,
        DefenseKind::Random,
        DefenseKind::RoundRobin,
        DefenseKind::Orthogonal,
    ];

    /// Every defense kind, in paper/table order.
    pub const ALL: [DefenseKind; 10] = [
        DefenseKind::None,
        DefenseKind::FrequencyHopping,
        DefenseKind::Random,
        DefenseKind::RoundRobin,
        DefenseKind::Orthogonal,
        DefenseKind::OrthogonalModulo,
        DefenseKind::Pseudonym,
        DefenseKind::Padding,
        DefenseKind::Morphing,
        DefenseKind::MorphThenReshape,
    ];

    /// The column label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            DefenseKind::None => "Original",
            DefenseKind::FrequencyHopping => "FH",
            DefenseKind::Random => "RA",
            DefenseKind::RoundRobin => "RR",
            DefenseKind::Orthogonal => "OR",
            DefenseKind::OrthogonalModulo => "OR-mod",
            DefenseKind::Pseudonym => "Pseudonym",
            DefenseKind::Padding => "Padding",
            DefenseKind::Morphing => "Morphing",
            DefenseKind::MorphThenReshape => "Morph+OR",
        }
    }
}

impl std::str::FromStr for DefenseKind {
    type Err = String;

    /// Parses the shorthand used by scenario spec files (table labels and
    /// snake_case aliases both work).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.trim().to_ascii_lowercase();
        let kind = match lowered.as_str() {
            "none" | "original" => DefenseKind::None,
            "fh" | "frequency_hopping" => DefenseKind::FrequencyHopping,
            "ra" | "random" => DefenseKind::Random,
            "rr" | "round_robin" => DefenseKind::RoundRobin,
            "or" | "orthogonal" => DefenseKind::Orthogonal,
            "or_mod" | "or-mod" | "orthogonal_modulo" => DefenseKind::OrthogonalModulo,
            "pseudonym" => DefenseKind::Pseudonym,
            "padding" => DefenseKind::Padding,
            "morphing" => DefenseKind::Morphing,
            "morph_or" | "morph+or" | "morph_then_reshape" => DefenseKind::MorphThenReshape,
            _ => return Err(format!("unknown defense kind: {s:?}")),
        };
        Ok(kind)
    }
}

/// Trains the paper's adversary on original traffic windows.
pub fn train_adversary(config: &ExperimentConfig, mode: FeatureMode) -> AdversaryEnsemble {
    let training = config.training_corpus();
    let dataset = build_dataset(&training, config.window(), DEFAULT_MIN_PACKETS, mode);
    AdversaryEnsemble::train(
        &dataset,
        &EnsembleConfig {
            seed: config.train_seed ^ 0xD15C,
            ..EnsembleConfig::default()
        },
    )
}

/// The scheduling algorithm behind a pure reshaping defense, or `None` for
/// the defenses that transform or time/identity-partition traffic (or
/// compose several stages).
pub fn reshape_algorithm(
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed: u64,
) -> Option<Box<dyn ReshapeAlgorithm>> {
    scheduler_for(defense, config.interfaces, seed)
}

/// [`reshape_algorithm`] with the interface count passed directly (the
/// station scenario has no [`ExperimentConfig`]).
fn scheduler_for(
    defense: DefenseKind,
    interfaces: usize,
    seed: u64,
) -> Option<Box<dyn ReshapeAlgorithm>> {
    match defense {
        DefenseKind::Random => Some(Box::new(RandomAssign::new(interfaces, seed))),
        DefenseKind::RoundRobin => Some(Box::new(RoundRobin::new(interfaces))),
        DefenseKind::Orthogonal => Some(Box::new(OrthogonalRanges::new(
            SizeRanges::for_interface_count(interfaces)
                .expect("experiment interface count is valid"),
        ))),
        DefenseKind::OrthogonalModulo => Some(Box::new(OrthogonalModulo::new(interfaces))),
        DefenseKind::None
        | DefenseKind::FrequencyHopping
        | DefenseKind::Pseudonym
        | DefenseKind::Padding
        | DefenseKind::Morphing
        | DefenseKind::MorphThenReshape => None,
    }
}

/// Builds the streaming stage pipeline of any defense — the single defended
/// data path shared by the table evaluation, the multi-station scenario and
/// the throughput baseline.
///
/// Since the scenario-engine refactor this is a thin wrapper over the
/// declarative form: the kind expands to its
/// [`DefenseSpec`](crate::scenario::DefenseSpec) stage list, which builds the
/// pipeline with the same construction (and the same seeds) the scenario
/// engine uses for spec files.
///
/// `calib_secs` sizes the generated calibration sessions the morphing stages
/// need (the paper's training-session length); `source` optionally provides
/// the materialised trace so batch-equivalent runs estimate the morphing
/// source CDF from the actual traffic, exactly like the batch wrapper.
pub fn defense_pipeline(
    defense: DefenseKind,
    app: AppKind,
    interfaces: usize,
    seed: u64,
    calib_secs: f64,
    source: Option<&Trace>,
) -> StagePipeline {
    crate::scenario::kind_pipeline(defense, app, interfaces, seed, calib_secs, source)
}

/// Applies a defense to one labelled trace, returning the sub-flows the
/// adversary observes. Each sub-flow keeps the ground-truth label so the
/// evaluation can score predictions.
///
/// This is the **batch reference** built on the per-defense batch wrappers
/// (`apply` / `partition` / `Reshaper`), kept so the equivalence tests can
/// check the unified streaming path against an independent composition; the
/// evaluation itself never calls it.
pub fn apply_defense(
    trace: &Trace,
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed: u64,
) -> Vec<Trace> {
    if let Some(algorithm) = reshape_algorithm(defense, config, seed) {
        return Reshaper::new(algorithm)
            .reshape(trace)
            .sub_traces()
            .to_vec();
    }
    match defense {
        DefenseKind::None => vec![trace.clone()],
        DefenseKind::FrequencyHopping => FrequencyHopper::default()
            .partition(trace)
            .into_iter()
            .map(|(_, t)| t)
            .collect(),
        DefenseKind::Pseudonym => {
            let mut rng = StdRng::seed_from_u64(seed);
            PseudonymRotator::default()
                .partition(trace, &mut rng)
                .into_iter()
                .map(|(_, t)| t)
                .collect()
        }
        DefenseKind::Padding => vec![PacketPadder::new().apply(trace).0],
        DefenseKind::Morphing => vec![morphed_reference(trace, config, seed)],
        DefenseKind::MorphThenReshape => {
            let morphed = morphed_reference(trace, config, seed);
            Reshaper::new(Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(config.interfaces)
                    .expect("experiment interface count is valid"),
            )))
            .reshape(&morphed)
            .sub_traces()
            .to_vec()
        }
        DefenseKind::Random
        | DefenseKind::RoundRobin
        | DefenseKind::Orthogonal
        | DefenseKind::OrthogonalModulo => {
            unreachable!("reshaping defenses handled above")
        }
    }
}

/// The batch morphing reference: the paper pairing with the same seeds as the
/// streaming [`morphing_stage`].
fn morphed_reference(trace: &Trace, config: &ExperimentConfig, seed: u64) -> Trace {
    let app = trace.app().expect("evaluation traces are labelled");
    let target_app = paper_morphing_target(app);
    let target_trace =
        SessionGenerator::new(target_app, seed ^ 0xfeed).generate_secs(config.train_session_secs);
    TrafficMorpher::from_target_trace(target_app, &target_trace)
        .apply(trace)
        .0
}

/// Streams one evaluation trace through a defense and returns every window
/// example the adversary observes.
///
/// Every defense — transforming, partitioning, reshaping or composed — runs
/// through the same [`StagePipeline`]: packets stream from the trace through
/// the stages into one [`StreamingWindower`] per emitted sub-flow, touching
/// each packet exactly once with no sub-trace or window materialisation.
pub fn defended_examples(
    trace: &Trace,
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed: u64,
    mode: FeatureMode,
) -> Vec<WindowExample> {
    let Some(app) = trace.app() else {
        return Vec::new();
    };
    let mut pipeline = defense_pipeline(
        defense,
        app,
        config.interfaces,
        seed,
        config.train_session_secs,
        Some(trace),
    );
    let mut windowers = FlowWindowers::for_app(config.window(), DEFAULT_MIN_PACKETS, mode, app);
    let mut out = Vec::new();
    pipeline.run(&mut trace.stream(), |flow: FlowId, packet| {
        if let Some(example) = windowers.push(flow as usize, packet) {
            out.push(example);
        }
    });
    out.extend(windowers.finish());
    out
}

/// Evaluates one defense: the adversary classifies every window of every
/// observed sub-flow; the resulting confusion matrix is returned.
///
/// The evaluation is sharded with scoped threads — one shard per evaluation
/// trace, at most `available_parallelism` in flight — and each shard streams
/// its trace through the defense via [`defended_examples`]. Shard results are
/// joined in trace order, so the outcome is deterministic regardless of
/// thread scheduling.
pub fn evaluate_defense(
    adversary: &AdversaryEnsemble,
    eval_traces: &[Trace],
    defense: DefenseKind,
    config: &ExperimentConfig,
    mode: FeatureMode,
) -> ConfusionMatrix {
    let shards = defended_example_shards(eval_traces, defense, config, config.eval_seed, mode);
    let mut dataset = Dataset::new(FEATURE_DIM);
    for (features, label) in shards.into_iter().flatten() {
        dataset.push(features, label);
    }
    if dataset.is_empty() {
        return ConfusionMatrix::new(AppKind::COUNT);
    }
    let (_, matrix) = adversary.evaluate_best(&dataset);
    // The matrix always covers all seven classes for table printing.
    matrix.widen_to(AppKind::COUNT)
}

/// Streams every trace through a defense in parallel (one shard per trace, at
/// most `available_parallelism` in flight), returning the per-trace example
/// shards in trace order. The shared body of the batch and online evaluation
/// modes.
fn defended_example_shards(
    eval_traces: &[Trace],
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed_base: u64,
    mode: FeatureMode,
) -> Vec<Vec<WindowExample>> {
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8);
    let mut shards: Vec<Vec<WindowExample>> = Vec::with_capacity(eval_traces.len());
    for (batch_index, batch) in eval_traces.chunks(parallelism).enumerate() {
        shards.extend(std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .iter()
                .enumerate()
                .map(|(offset, trace)| {
                    let i = batch_index * parallelism + offset;
                    let seed = seed_base ^ (i as u64) << 8;
                    scope.spawn(move || defended_examples(trace, defense, config, seed, mode))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("evaluation shard panicked"))
                .collect::<Vec<_>>()
        }));
    }
    shards
}

/// Interleaves per-trace example shards round-robin (first window of every
/// trace, then second window of every trace, …), which is the order a live
/// eavesdropper watching all sessions concurrently would see windows close.
/// An online learner must not receive the stream sorted by application.
fn interleave_shards(shards: Vec<Vec<WindowExample>>) -> Vec<WindowExample> {
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut shards: Vec<std::vec::IntoIter<WindowExample>> =
        shards.into_iter().map(Vec::into_iter).collect();
    while out.len() < total {
        for shard in &mut shards {
            if let Some(example) = shard.next() {
                out.push(example);
            }
        }
    }
    out
}

/// The result of one online (prequential) evaluation phase.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEvaluation {
    /// Majority-vote confusion matrix over **this phase's** examples only,
    /// widened to all seven classes like the batch matrices.
    pub matrix: ConfusionMatrix,
    /// Prequential counts of this phase, including per-member hits.
    pub segment: SegmentStats,
}

impl OnlineEvaluation {
    /// The phase's majority-vote mean accuracy (the paper's metric).
    pub fn mean_accuracy(&self) -> f64 {
        self.matrix.mean_accuracy()
    }
}

/// Creates the untrained online counterpart of [`train_adversary`]'s
/// ensemble: same members, same seeding rule, but learning one window at a
/// time behind a running normalizer.
pub fn online_adversary(config: &ExperimentConfig) -> OnlineAdversary {
    OnlineAdversary::new(
        FEATURE_DIM,
        AppKind::COUNT,
        &EnsembleConfig {
            seed: config.train_seed ^ 0xD15C,
            ..EnsembleConfig::default()
        },
    )
}

/// Trains the streaming adversary prequentially on the **undefended**
/// training corpus — the online-mode analogue of [`train_adversary`]. The
/// returned evaluator carries the warm adversary plus the accuracy timeline
/// of the warm-up phase; chain [`evaluate_defense_online`] calls on it to
/// score defenses.
pub fn train_adversary_online(
    config: &ExperimentConfig,
    mode: FeatureMode,
) -> PrequentialEvaluator {
    let mut evaluator = PrequentialEvaluator::new(online_adversary(config), 25);
    let training = config.training_corpus();
    evaluate_defense_online(
        &mut evaluator,
        &training,
        DefenseKind::None,
        config,
        config.train_seed,
        mode,
    );
    evaluator
}

/// Evaluates one defense in **online-adversary mode**: the defended window
/// examples of all evaluation traces are interleaved round-robin (the order
/// a live eavesdropper sees windows close across concurrent sessions) and
/// scored test-then-train through the evaluator's adversary, which keeps
/// learning as it scores.
///
/// Returns this phase's confusion matrix and segment counts; cumulative
/// state (matrices, timeline, the adversary itself) stays on `evaluator`, so
/// phases chain: warm up on undefended traffic, then splice in a defense and
/// watch the prequential curve drop.
pub fn evaluate_defense_online(
    evaluator: &mut PrequentialEvaluator,
    eval_traces: &[Trace],
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed_base: u64,
    mode: FeatureMode,
) -> OnlineEvaluation {
    let shards = defended_example_shards(eval_traces, defense, config, seed_base, mode);
    let stream = interleave_shards(shards);
    let mut matrix = ConfusionMatrix::new(AppKind::COUNT);
    // Start a fresh segment for this phase.
    let _ = evaluator.take_segment();
    for (features, label) in &stream {
        let predicted = evaluator.test_then_train(features, *label);
        matrix.record(*label, predicted);
    }
    OnlineEvaluation {
        matrix,
        segment: evaluator.take_segment(),
    }
}

/// Convenience wrapper: train the adversary and evaluate a set of defenses,
/// returning `(defense, confusion matrix)` pairs.
pub fn run_defense_comparison(
    config: &ExperimentConfig,
    defenses: &[DefenseKind],
    mode: FeatureMode,
) -> Vec<(DefenseKind, ConfusionMatrix)> {
    let adversary = train_adversary(config, mode);
    let eval = config.evaluation_corpus();
    defenses
        .iter()
        .map(|&d| (d, evaluate_defense(&adversary, &eval, d, config, mode)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use classifier::window::windowed_examples;

    #[test]
    fn streaming_evaluation_sees_the_same_windows_as_the_batch_path() {
        // The unified stage-pipeline evaluation must observe exactly the
        // windows the independent batch reference (per-defense wrappers ->
        // sub-traces -> windowed_examples) does — for every defense,
        // including the composed morph-then-reshape pipeline.
        let config = ExperimentConfig::quick();
        let trace = SessionGenerator::new(AppKind::BitTorrent, 5).generate_secs(40.0);
        for defense in [
            DefenseKind::None,
            DefenseKind::Random,
            DefenseKind::RoundRobin,
            DefenseKind::Orthogonal,
            DefenseKind::OrthogonalModulo,
            DefenseKind::FrequencyHopping,
            DefenseKind::Pseudonym,
            DefenseKind::Padding,
            DefenseKind::Morphing,
            DefenseKind::MorphThenReshape,
        ] {
            let streamed = defended_examples(&trace, defense, &config, 1, FeatureMode::Full);
            let batch: usize = apply_defense(&trace, defense, &config, 1)
                .iter()
                .map(|observed| {
                    windowed_examples(
                        observed,
                        config.window(),
                        DEFAULT_MIN_PACKETS,
                        FeatureMode::Full,
                    )
                    .len()
                })
                .sum();
            assert_eq!(streamed.len(), batch, "{defense:?} window counts diverge");
            assert!(!streamed.is_empty(), "{defense:?} produced no examples");
        }
    }

    #[test]
    fn defense_labels_are_unique() {
        let labels: Vec<&str> = DefenseKind::TABLE23.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["Original", "FH", "RA", "RR", "OR"]);
        assert_eq!(DefenseKind::Padding.label(), "Padding");
        assert_eq!(DefenseKind::MorphThenReshape.label(), "Morph+OR");
    }

    #[test]
    fn apply_defense_preserves_packets_for_partitioning_defenses() {
        let config = ExperimentConfig::quick();
        let trace = SessionGenerator::new(AppKind::BitTorrent, 5).generate_secs(20.0);
        for defense in [
            DefenseKind::None,
            DefenseKind::FrequencyHopping,
            DefenseKind::Random,
            DefenseKind::RoundRobin,
            DefenseKind::Orthogonal,
            DefenseKind::OrthogonalModulo,
            DefenseKind::Pseudonym,
        ] {
            let observed = apply_defense(&trace, defense, &config, 1);
            let total: usize = observed.iter().map(Trace::len).sum();
            assert_eq!(
                total,
                trace.len(),
                "{defense:?} must not add or drop packets"
            );
        }
        // Padding, morphing and the composition keep the packet count but may
        // grow bytes.
        for defense in [
            DefenseKind::Padding,
            DefenseKind::Morphing,
            DefenseKind::MorphThenReshape,
        ] {
            let observed = apply_defense(&trace, defense, &config, 1);
            let total: usize = observed.iter().map(Trace::len).sum();
            assert_eq!(total, trace.len());
            let bytes: u64 = observed.iter().map(Trace::total_bytes).sum();
            assert!(bytes >= trace.total_bytes());
        }
    }

    #[test]
    fn composed_pipeline_reports_overhead_through_the_shared_ledger() {
        // Morph-then-reshape: the pipeline ledger shows the morphing bytes
        // (reshaping adds none), and the per-stage ledgers agree.
        let config = ExperimentConfig::quick();
        let trace = SessionGenerator::new(AppKind::Chatting, 9).generate_secs(40.0);
        let mut pipeline = defense_pipeline(
            DefenseKind::MorphThenReshape,
            AppKind::Chatting,
            config.interfaces,
            7,
            config.train_session_secs,
            Some(&trace),
        );
        let mut emitted = 0usize;
        pipeline.run(&mut trace.stream(), |_, _| emitted += 1);
        assert_eq!(emitted, trace.len());
        let end_to_end = pipeline.overhead();
        assert!(end_to_end.percent() > 0.0, "morphing chat adds bytes");
        assert_eq!(end_to_end.added_packets(), 0);
        let morph = pipeline.stages()[0].overhead();
        let reshape = pipeline.stages()[1].overhead();
        assert_eq!(end_to_end.added_bytes(), morph.added_bytes());
        assert_eq!(reshape.percent(), 0.0, "reshaping is zero-overhead");
        assert_eq!(reshape.original_bytes, morph.transformed_bytes);
    }

    #[test]
    fn composed_overhead_covers_each_components_contribution() {
        // Satellite regression for the BENCH_pipeline.json observation that
        // morphing and morph∘OR report the *same* overhead_pct (13.12).
        // Verified correct, not a ledger bug: ReshapeStage records every
        // byte through its own ledger (absorbed == emitted) but adds none,
        // so the composed end-to-end overhead equals the morphing
        // contribution exactly. The invariant this pins: wherever padding
        // (or any byte-adding stage) applies, the composed pipeline's
        // overhead is at least every component's added bytes.
        use crate::scenario::{AlgorithmSpec, DefenseSpec, StageSpec};
        use defenses::spec::{DefenseStageSpec, StageContext};

        let trace = SessionGenerator::new(AppKind::BitTorrent, 3).generate_secs(40.0);
        let ctx = StageContext {
            app: AppKind::BitTorrent,
            seed: 3,
            calib_secs: 40.0,
            source: Some(&trace),
        };
        let pad = StageSpec::Defense(DefenseStageSpec::Padding { size: None });
        let morph = StageSpec::Defense(DefenseStageSpec::Morphing { target: None });
        let or = StageSpec::Reshape {
            algorithm: AlgorithmSpec::Orthogonal,
            interfaces: None,
        };
        for stages in [
            vec![pad, or],    // pad upstream of the dispatcher
            vec![or, pad],    // per-vif padding downstream
            vec![morph, or],  // the paper's composition
            vec![morph, pad], // two byte-adding stages chained
        ] {
            let labels: Vec<_> = stages.iter().map(StageSpec::name).collect();
            let mut pipeline = DefenseSpec { stages }
                .build(&ctx, 3)
                .expect("valid composition");
            let mut emitted = 0usize;
            pipeline.run(&mut trace.stream(), |_, _| emitted += 1);
            assert_eq!(emitted, trace.len(), "{labels:?}");
            let end_to_end = pipeline.overhead();
            assert!(end_to_end.added_bytes() > 0, "{labels:?} adds bytes");
            for (stage, label) in pipeline.stages().iter().zip(&labels) {
                let component = stage.overhead();
                // Every stage accounts every byte it saw...
                assert!(component.original_bytes > 0, "{labels:?}/{label} ledger");
                // ...and the composition never under-reports a component.
                assert!(
                    end_to_end.added_bytes() >= component.added_bytes(),
                    "{labels:?}: end-to-end {} < component {label} {}",
                    end_to_end.added_bytes(),
                    component.added_bytes()
                );
            }
        }

        // The observed equality itself, pinned: morph∘OR costs exactly what
        // morphing alone costs, because the reshape stage is zero-overhead
        // while still recording every byte through the shared ledger.
        let run_overhead = |defense: DefenseKind| {
            let mut pipeline =
                defense_pipeline(defense, AppKind::BitTorrent, 3, 3, 40.0, Some(&trace));
            pipeline.run(&mut trace.stream(), |_, _| {});
            pipeline.overhead()
        };
        let morphing_only = run_overhead(DefenseKind::Morphing);
        let composed = run_overhead(DefenseKind::MorphThenReshape);
        assert_eq!(morphing_only.added_bytes(), composed.added_bytes());
        assert_eq!(morphing_only.percent(), composed.percent());
    }

    #[test]
    fn adversary_identifies_original_traffic_far_better_than_chance() {
        let config = ExperimentConfig::quick();
        let adversary = train_adversary(&config, FeatureMode::Full);
        let eval = config.evaluation_corpus();
        let matrix = evaluate_defense(
            &adversary,
            &eval,
            DefenseKind::None,
            &config,
            FeatureMode::Full,
        );
        let acc = matrix.mean_accuracy();
        assert!(
            acc > 0.5,
            "mean accuracy on original traffic {acc} should beat chance (1/7)"
        );
    }

    #[test]
    fn online_prequential_accuracy_converges_to_the_batch_ensemble() {
        // The acceptance criterion of the online-adversary refactor: on the
        // same seeded undefended workload, the prequential (online) ensemble
        // converges to within 5 percentage points of the batch-trained
        // ensemble.
        let config = ExperimentConfig {
            train_sessions: 4,
            train_session_secs: 90.0,
            eval_sessions: 2,
            eval_session_secs: 60.0,
            ..ExperimentConfig::quick()
        };
        let mode = FeatureMode::Full;
        let eval = config.evaluation_corpus();

        let batch = train_adversary(&config, mode);
        let batch_acc =
            evaluate_defense(&batch, &eval, DefenseKind::None, &config, mode).mean_accuracy();

        let mut evaluator = train_adversary_online(&config, mode);
        let warmup_examples = evaluator.examples();
        assert!(
            warmup_examples > 100,
            "warm-up saw {warmup_examples} windows"
        );
        let online = evaluate_defense_online(
            &mut evaluator,
            &eval,
            DefenseKind::None,
            &config,
            config.eval_seed,
            mode,
        );
        let online_acc = online.mean_accuracy();
        eprintln!("batch mean accuracy {batch_acc:.3}, online mean accuracy {online_acc:.3}");
        assert!(
            online_acc >= batch_acc - 0.05,
            "online mean accuracy {online_acc:.3} must converge to within 5pp \
             of the batch ensemble {batch_acc:.3}"
        );
        // The phase bookkeeping is consistent: segment counts cover exactly
        // the evaluation stream.
        assert_eq!(online.segment.total, online.matrix.total());
        assert_eq!(evaluator.examples(), warmup_examples + online.segment.total);
    }

    #[test]
    fn orthogonal_reshaping_hurts_the_adversary_more_than_round_robin() {
        let config = ExperimentConfig::quick();
        let results = run_defense_comparison(
            &config,
            &[
                DefenseKind::None,
                DefenseKind::RoundRobin,
                DefenseKind::Orthogonal,
            ],
            FeatureMode::Full,
        );
        let acc: Vec<f64> = results.iter().map(|(_, m)| m.mean_accuracy()).collect();
        // Original >= RR accuracy >= OR accuracy (with a small tolerance for noise).
        assert!(
            acc[0] > acc[2],
            "original {} must beat OR {}",
            acc[0],
            acc[2]
        );
        assert!(
            acc[1] > acc[2] - 0.05,
            "RR {} should not be (much) worse than OR {}",
            acc[1],
            acc[2]
        );
    }
}
