//! The evaluation pipeline shared by every table experiment.
//!
//! 1. Train the adversary (SVM + NN ensemble) on *original*, un-defended
//!    traffic, cut into eavesdropping windows of `W` seconds.
//! 2. Apply a defense to each evaluation trace, producing the sub-flows the
//!    adversary actually observes (one per virtual interface / channel / MAC
//!    pseudonym, or the trace itself when no defense is active).
//! 3. Window each observed sub-flow, classify every window, and score the
//!    prediction against the ground-truth application of the original trace.
//!
//! That is exactly the paper's methodology: the adversary knows what original
//! application traffic looks like, and the defense succeeds when per-interface
//! sub-flows no longer resemble it.

use classifier::dataset::Dataset;
use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::features::FEATURE_DIM;
use classifier::metrics::ConfusionMatrix;
use classifier::window::{build_dataset, windowed_examples, FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::frequency_hopping::FrequencyHopper;
use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::padding::PacketPadder;
use defenses::pseudonym::PseudonymRotator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::trace::Trace;

use crate::corpus::ExperimentConfig;

/// The defenses compared by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No defense: the adversary sees the original traffic.
    None,
    /// Frequency hopping over channels 1/6/11 with a 500 ms dwell.
    FrequencyHopping,
    /// Random assignment over virtual interfaces (RA).
    Random,
    /// Round-robin assignment over virtual interfaces (RR).
    RoundRobin,
    /// Orthogonal Reshaping over packet-size ranges (OR).
    Orthogonal,
    /// The size-modulo OR variant of Fig. 5.
    OrthogonalModulo,
    /// MAC pseudonym rotation (per-60 s address change).
    Pseudonym,
    /// Packet padding to the maximum packet size.
    Padding,
    /// Traffic morphing using the paper's application pairing.
    Morphing,
}

impl DefenseKind {
    /// The four scheduling algorithms of Tables II/III, in paper order
    /// (plus the undefended baseline first).
    pub const TABLE23: [DefenseKind; 5] = [
        DefenseKind::None,
        DefenseKind::FrequencyHopping,
        DefenseKind::Random,
        DefenseKind::RoundRobin,
        DefenseKind::Orthogonal,
    ];

    /// The column label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            DefenseKind::None => "Original",
            DefenseKind::FrequencyHopping => "FH",
            DefenseKind::Random => "RA",
            DefenseKind::RoundRobin => "RR",
            DefenseKind::Orthogonal => "OR",
            DefenseKind::OrthogonalModulo => "OR-mod",
            DefenseKind::Pseudonym => "Pseudonym",
            DefenseKind::Padding => "Padding",
            DefenseKind::Morphing => "Morphing",
        }
    }
}

/// Trains the paper's adversary on original traffic windows.
pub fn train_adversary(config: &ExperimentConfig, mode: FeatureMode) -> AdversaryEnsemble {
    let training = config.training_corpus();
    let dataset = build_dataset(&training, config.window(), DEFAULT_MIN_PACKETS, mode);
    AdversaryEnsemble::train(
        &dataset,
        &EnsembleConfig {
            seed: config.train_seed ^ 0xD15C,
            ..EnsembleConfig::default()
        },
    )
}

/// Applies a defense to one labelled trace, returning the sub-flows the
/// adversary observes. Each sub-flow keeps the ground-truth label so the
/// evaluation can score predictions.
pub fn apply_defense(
    trace: &Trace,
    defense: DefenseKind,
    config: &ExperimentConfig,
    seed: u64,
) -> Vec<Trace> {
    match defense {
        DefenseKind::None => vec![trace.clone()],
        DefenseKind::FrequencyHopping => FrequencyHopper::default()
            .partition(trace)
            .into_iter()
            .map(|(_, t)| t)
            .collect(),
        DefenseKind::Random => {
            reshape_with(Box::new(RandomAssign::new(config.interfaces, seed)), trace)
        }
        DefenseKind::RoundRobin => {
            reshape_with(Box::new(RoundRobin::new(config.interfaces)), trace)
        }
        DefenseKind::Orthogonal => reshape_with(
            Box::new(OrthogonalRanges::new(
                SizeRanges::for_interface_count(config.interfaces)
                    .expect("experiment interface count is valid"),
            )),
            trace,
        ),
        DefenseKind::OrthogonalModulo => {
            reshape_with(Box::new(OrthogonalModulo::new(config.interfaces)), trace)
        }
        DefenseKind::Pseudonym => {
            let mut rng = StdRng::seed_from_u64(seed);
            PseudonymRotator::default()
                .partition(trace, &mut rng)
                .into_iter()
                .map(|(_, t)| t)
                .collect()
        }
        DefenseKind::Padding => vec![PacketPadder::new().apply(trace).0],
        DefenseKind::Morphing => {
            let app = trace.app().expect("evaluation traces are labelled");
            let target_app = paper_morphing_target(app);
            let target_trace = SessionGenerator::new(target_app, seed ^ 0xfeed)
                .generate_secs(config.train_session_secs);
            vec![
                TrafficMorpher::from_target_trace(target_app, &target_trace)
                    .apply(trace)
                    .0,
            ]
        }
    }
}

fn reshape_with(algorithm: Box<dyn ReshapeAlgorithm>, trace: &Trace) -> Vec<Trace> {
    Reshaper::new(algorithm)
        .reshape(trace)
        .sub_traces()
        .to_vec()
}

/// Evaluates one defense: the adversary classifies every window of every
/// observed sub-flow; the resulting confusion matrix is returned.
pub fn evaluate_defense(
    adversary: &AdversaryEnsemble,
    eval_traces: &[Trace],
    defense: DefenseKind,
    config: &ExperimentConfig,
    mode: FeatureMode,
) -> ConfusionMatrix {
    let mut dataset = Dataset::new(FEATURE_DIM);
    for (i, trace) in eval_traces.iter().enumerate() {
        for observed in apply_defense(trace, defense, config, config.eval_seed ^ (i as u64) << 8) {
            for (features, label) in
                windowed_examples(&observed, config.window(), DEFAULT_MIN_PACKETS, mode)
            {
                dataset.push(features, label);
            }
        }
    }
    if dataset.is_empty() {
        return ConfusionMatrix::new(AppKind::COUNT);
    }
    let (_, mut matrix) = adversary.evaluate_best(&dataset);
    // Make sure the matrix always covers all seven classes for table printing.
    if matrix.class_count() < AppKind::COUNT {
        let mut full = ConfusionMatrix::new(AppKind::COUNT);
        for t in 0..matrix.class_count() {
            for p in 0..matrix.class_count() {
                for _ in 0..matrix.count(t, p) {
                    full.record(t, p);
                }
            }
        }
        matrix = full;
    }
    matrix
}

/// Convenience wrapper: train the adversary and evaluate a set of defenses,
/// returning `(defense, confusion matrix)` pairs.
pub fn run_defense_comparison(
    config: &ExperimentConfig,
    defenses: &[DefenseKind],
    mode: FeatureMode,
) -> Vec<(DefenseKind, ConfusionMatrix)> {
    let adversary = train_adversary(config, mode);
    let eval = config.evaluation_corpus();
    defenses
        .iter()
        .map(|&d| (d, evaluate_defense(&adversary, &eval, d, config, mode)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_labels_are_unique() {
        let labels: Vec<&str> = DefenseKind::TABLE23.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["Original", "FH", "RA", "RR", "OR"]);
        assert_eq!(DefenseKind::Padding.label(), "Padding");
    }

    #[test]
    fn apply_defense_preserves_packets_for_partitioning_defenses() {
        let config = ExperimentConfig::quick();
        let trace = SessionGenerator::new(AppKind::BitTorrent, 5).generate_secs(20.0);
        for defense in [
            DefenseKind::None,
            DefenseKind::FrequencyHopping,
            DefenseKind::Random,
            DefenseKind::RoundRobin,
            DefenseKind::Orthogonal,
            DefenseKind::OrthogonalModulo,
            DefenseKind::Pseudonym,
        ] {
            let observed = apply_defense(&trace, defense, &config, 1);
            let total: usize = observed.iter().map(Trace::len).sum();
            assert_eq!(
                total,
                trace.len(),
                "{defense:?} must not add or drop packets"
            );
        }
        // Padding and morphing keep the packet count but may grow bytes.
        for defense in [DefenseKind::Padding, DefenseKind::Morphing] {
            let observed = apply_defense(&trace, defense, &config, 1);
            assert_eq!(observed.len(), 1);
            assert_eq!(observed[0].len(), trace.len());
            assert!(observed[0].total_bytes() >= trace.total_bytes());
        }
    }

    #[test]
    fn adversary_identifies_original_traffic_far_better_than_chance() {
        let config = ExperimentConfig::quick();
        let adversary = train_adversary(&config, FeatureMode::Full);
        let eval = config.evaluation_corpus();
        let matrix = evaluate_defense(
            &adversary,
            &eval,
            DefenseKind::None,
            &config,
            FeatureMode::Full,
        );
        let acc = matrix.mean_accuracy();
        assert!(
            acc > 0.5,
            "mean accuracy on original traffic {acc} should beat chance (1/7)"
        );
    }

    #[test]
    fn orthogonal_reshaping_hurts_the_adversary_more_than_round_robin() {
        let config = ExperimentConfig::quick();
        let results = run_defense_comparison(
            &config,
            &[
                DefenseKind::None,
                DefenseKind::RoundRobin,
                DefenseKind::Orthogonal,
            ],
            FeatureMode::Full,
        );
        let acc: Vec<f64> = results.iter().map(|(_, m)| m.mean_accuracy()).collect();
        // Original >= RR accuracy >= OR accuracy (with a small tolerance for noise).
        assert!(
            acc[0] > acc[2],
            "original {} must beat OR {}",
            acc[0],
            acc[2]
        );
        assert!(
            acc[1] > acc[2] - 0.05,
            "RR {} should not be (much) worse than OR {}",
            acc[1],
            acc[2]
        );
    }
}
