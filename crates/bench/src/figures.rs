//! Figure experiments: the packet-size distributions of Fig. 1 and the
//! per-interface histograms/PDFs of Figs. 4 and 5.

use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::{OrthogonalModulo, OrthogonalRanges, ReshapeAlgorithm};
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::distribution::SizeHistogram;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::Direction;
use traffic_gen::trace::Trace;
use traffic_gen::MAX_PACKET_SIZE;

/// Bin width (bytes) used for the figure histograms.
pub const FIGURE_BIN_WIDTH: usize = 8;

/// One application's downlink packet-size distribution (Fig. 1 series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppSizePdf {
    /// The application.
    pub app: AppKind,
    /// Number of downlink packets measured.
    pub packets: usize,
    /// Mean downlink packet size in bytes.
    pub mean_size: f64,
    /// Fraction of downlink packets at most 232 bytes (the small-packet mode).
    pub small_fraction: f64,
    /// Fraction of downlink packets of at least 1546 bytes (the near-MTU mode).
    pub large_fraction: f64,
    /// The cumulative distribution sampled every 200 bytes (x = 200, 400, … 1600),
    /// which is the shape Fig. 1 plots.
    pub cdf_samples: Vec<(usize, f64)>,
}

/// Figure 1: the downlink packet-size PDF of each of the seven applications.
pub fn figure1(seed: u64, session_secs: f64) -> Vec<AppSizePdf> {
    AppKind::ALL
        .iter()
        .map(|&app| {
            let trace = SessionGenerator::new(app, seed).generate_secs(session_secs);
            let sizes = trace.sizes(Direction::Downlink);
            let histogram =
                SizeHistogram::from_sizes(sizes.iter().copied(), MAX_PACKET_SIZE, FIGURE_BIN_WIDTH);
            let cdf = histogram.cdf();
            let cdf_at = |size: usize| -> f64 {
                let bin = (size / FIGURE_BIN_WIDTH).min(cdf.len() - 1);
                cdf[bin]
            };
            let small =
                sizes.iter().filter(|s| **s <= 232).count() as f64 / sizes.len().max(1) as f64;
            let large =
                sizes.iter().filter(|s| **s >= 1546).count() as f64 / sizes.len().max(1) as f64;
            AppSizePdf {
                app,
                packets: sizes.len(),
                mean_size: histogram.mean(),
                small_fraction: small,
                large_fraction: large,
                cdf_samples: (1..=8).map(|i| (i * 200, cdf_at(i * 200))).collect(),
            }
        })
        .collect()
}

/// One interface's series in Fig. 4 / Fig. 5: the per-range packet counts and
/// summary statistics of the sub-flow carried by that interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterfaceSeries {
    /// Paper-style interface number (1-based); 0 denotes the original traffic.
    pub interface: usize,
    /// Number of packets on this interface.
    pub packets: usize,
    /// Mean packet size on this interface.
    pub mean_size: f64,
    /// Minimum packet size on this interface (0 when empty).
    pub min_size: usize,
    /// Maximum packet size on this interface (0 when empty).
    pub max_size: usize,
    /// Packet counts per 200-byte bucket (x = 0..=1600 step 200), the shape of
    /// the histograms in Figs. 4(a)–(d) and 5(a)–(d).
    pub histogram_200: Vec<u64>,
}

/// The complete data behind Fig. 4 or Fig. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrFigure {
    /// Which scheduling rule produced it ("OR" for Fig. 4, "OR-mod" for Fig. 5).
    pub algorithm: String,
    /// The original traffic's series (interface number 0).
    pub original: InterfaceSeries,
    /// One series per virtual interface.
    pub interfaces: Vec<InterfaceSeries>,
}

fn series_of(interface: usize, trace: &Trace) -> InterfaceSeries {
    let sizes: Vec<usize> = trace.packets().iter().map(|p| p.size).collect();
    let bins = MAX_PACKET_SIZE / 200 + 1;
    let mut histogram_200 = vec![0u64; bins];
    for &s in &sizes {
        histogram_200[(s / 200).min(bins - 1)] += 1;
    }
    InterfaceSeries {
        interface,
        packets: sizes.len(),
        mean_size: if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        },
        min_size: sizes.iter().copied().min().unwrap_or(0),
        max_size: sizes.iter().copied().max().unwrap_or(0),
        histogram_200,
    }
}

fn or_figure(algorithm: Box<dyn ReshapeAlgorithm>, seed: u64, session_secs: f64) -> OrFigure {
    let trace = SessionGenerator::new(AppKind::BitTorrent, seed).generate_secs(session_secs);
    let mut reshaper = Reshaper::new(algorithm);
    let name = reshaper.algorithm_name().to_string();
    let outcome = reshaper.reshape(&trace);
    OrFigure {
        algorithm: name,
        original: series_of(0, &trace),
        interfaces: outcome
            .sub_traces()
            .iter()
            .enumerate()
            .map(|(i, t)| series_of(i + 1, t))
            .collect(),
    }
}

/// Figure 4: OR schedules a BitTorrent flow by packet-size ranges
/// `(0, 525], (525, 1050], (1050, 1576]`.
pub fn figure4(seed: u64, session_secs: f64) -> OrFigure {
    let ranges = SizeRanges::equal_width(3, MAX_PACKET_SIZE).expect("three ranges over 1576 bytes");
    or_figure(Box::new(OrthogonalRanges::new(ranges)), seed, session_secs)
}

/// Figure 5: OR schedules the same BitTorrent flow by `size mod 3`.
pub fn figure5(seed: u64, session_secs: f64) -> OrFigure {
    or_figure(Box::new(OrthogonalModulo::new(3)), seed, session_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_the_bimodal_shape() {
        let series = figure1(1, 60.0);
        assert_eq!(series.len(), 7);
        let by_app = |app: AppKind| series.iter().find(|s| s.app == app).unwrap();
        // Downloading/video are dominated by near-MTU packets, chat/upload by small ones.
        assert!(by_app(AppKind::Downloading).large_fraction > 0.9);
        assert!(by_app(AppKind::Video).large_fraction > 0.9);
        assert!(by_app(AppKind::Chatting).small_fraction > 0.6);
        assert!(by_app(AppKind::Uploading).small_fraction > 0.9);
        // BitTorrent is bimodal.
        let bt = by_app(AppKind::BitTorrent);
        assert!(bt.small_fraction > 0.2 && bt.large_fraction > 0.3);
        for s in &series {
            assert!(s.packets > 0);
            // CDF samples are monotone and end near 1 at 1600 bytes.
            assert!(s.cdf_samples.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12));
            assert!(s.cdf_samples.last().unwrap().1 > 0.99);
        }
    }

    #[test]
    fn figure4_separates_the_size_ranges() {
        let fig = figure4(2, 60.0);
        assert_eq!(fig.algorithm, "OR");
        assert_eq!(fig.interfaces.len(), 3);
        let total: usize = fig.interfaces.iter().map(|s| s.packets).sum();
        assert_eq!(total, fig.original.packets);
        // Interface 1 carries only small packets, interface 3 only large ones.
        assert!(fig.interfaces[0].max_size <= 526);
        assert!(fig.interfaces[2].min_size >= 1051);
        assert!(fig.interfaces[0].mean_size < fig.interfaces[1].mean_size);
        assert!(fig.interfaces[1].mean_size < fig.interfaces[2].mean_size);
    }

    #[test]
    fn figure5_gives_every_interface_the_full_size_span() {
        let fig = figure5(3, 60.0);
        assert_eq!(fig.algorithm, "OR-mod");
        let total: usize = fig.interfaces.iter().map(|s| s.packets).sum();
        assert_eq!(total, fig.original.packets);
        for series in &fig.interfaces {
            assert!(series.packets > 0);
            // Unlike Fig. 4, each interface sees both small and large packets.
            assert!(
                series.min_size <= 300,
                "interface {} min {}",
                series.interface,
                series.min_size
            );
            assert!(
                series.max_size >= 1500,
                "interface {} max {}",
                series.interface,
                series.max_size
            );
        }
    }
}
