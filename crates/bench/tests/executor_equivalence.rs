//! The virtual-time event core's acceptance contract.
//!
//! 1. For every committed spec under `scenarios/` — reduced to a handful of
//!    stations so the property is cheap to check — the virtual-time executor
//!    reproduces the work-stealing pool's `ScenarioReport` **bit for bit**,
//!    at 1, 2, and 8 workers, for arbitrary scenario seeds (proptest).
//! 2. The executor admits every station but only ever holds the stations
//!    whose intervals overlap (`peak_active` ≪ population) — the
//!    O(active stations) memory claim, asserted on the reduced metropolis
//!    family.
//!
//! Together these license `executor = "virtual_time"` in any committed
//! spec: it changes how a scenario is scheduled, never what it reports.

use bench::scenario::{
    default_scenarios_dir, execute_scenario, load_spec, spec_files, train_for, ScenarioSpec,
};
use bench::Executor;
use proptest::prelude::*;

/// Shrinks a committed spec to an equivalence-test size: at most `target`
/// stations (group counts scaled proportionally), sessions capped at 30 s,
/// and events aimed at stations that no longer exist dropped. Everything
/// else — defenses, staggers, adversary, window — stays as committed.
fn reduced(mut spec: ScenarioSpec, target: usize) -> ScenarioSpec {
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    if total > target {
        for group in &mut spec.stations {
            group.count = (group.count * target / total).max(1);
        }
    }
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    for group in &mut spec.stations {
        group.secs = group.secs.min(30.0);
    }
    spec.events
        .retain(|event| event.station.is_none_or(|s| s < total));
    spec
}

proptest! {
    // Each case re-trains an adversary per scenario family, so a handful of
    // cases is already hundreds of station sessions.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn virtual_time_reproduces_the_pool_on_every_committed_family(seed in 0u64..10_000) {
        let files = spec_files(&default_scenarios_dir()).expect("scenarios/ exists");
        prop_assert!(files.len() >= 5, "expected the committed families, found {files:?}");
        for file in files {
            let mut spec = reduced(load_spec(&file).unwrap_or_else(|e| panic!("{e}")), 8);
            spec.seed = seed;
            let scenario = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: reduced spec must build: {e}", file.display()));
            let adversary = train_for(&scenario);
            let (pool_report, _) = execute_scenario(&scenario, &adversary, Executor::Pooled)
                .unwrap_or_else(|e| panic!("{}: pool run: {e}", file.display()));
            for workers in [1usize, 2, 8] {
                let executor = Executor::VirtualTime {
                    workers: Some(workers),
                };
                let (vt_report, stats) = execute_scenario(&scenario, &adversary, executor)
                    .unwrap_or_else(|e| panic!("{}: virtual-time run: {e}", file.display()));
                prop_assert!(
                    vt_report == pool_report,
                    "{}: seed {} diverged at {} workers",
                    file.display(),
                    seed,
                    workers
                );
                prop_assert_eq!(stats.admitted, scenario.station_count());
            }
        }
    }
}

#[test]
fn the_event_core_holds_only_the_overlapping_stations() {
    // The metropolis family reduced to 60 stations, with the stagger
    // stretched so sessions barely overlap: a 20 s session every 10 s means
    // at most a few stations are ever live together, out of 60 admitted.
    let path = default_scenarios_dir().join("metropolis.toml");
    let mut spec = reduced(load_spec(&path).unwrap_or_else(|e| panic!("{e}")), 60);
    for group in &mut spec.stations {
        group.stagger_secs = 10.0;
    }
    // The committed events are scheduled against the 10 ms stagger; against
    // the stretched one they'd fire outside their stations' intervals.
    spec.events.clear();
    let scenario = spec.build().expect("stretched metropolis builds");
    let total = scenario.station_count();
    assert!(
        total >= 50,
        "reduction kept a meaningful population: {total}"
    );
    let adversary = train_for(&scenario);
    let (report, stats) = execute_scenario(&scenario, &adversary, Executor::virtual_time())
        .expect("virtual-time run");
    assert_eq!(stats.admitted, total, "every station was admitted");
    assert!(
        stats.peak_active <= 8,
        "only overlapping sessions are live at once, got peak_active = {}",
        stats.peak_active
    );
    assert!(
        stats.virtual_secs > 500.0,
        "the virtual clock spans the stagger"
    );
    // And the schedule-aware execution still reports exactly what the pool
    // reports station by station.
    let (pool_report, _) =
        execute_scenario(&scenario, &adversary, Executor::Pooled).expect("pool run");
    assert_eq!(report, pool_report);
}
