//! The virtual-time event core's acceptance contract.
//!
//! 1. For every committed spec under `scenarios/` — reduced to a handful of
//!    stations so the property is cheap to check — the virtual-time executor
//!    reproduces the work-stealing pool's `ScenarioReport` **bit for bit**,
//!    at 1, 2, and 8 workers, for arbitrary scenario seeds (proptest), and
//!    for arbitrary coalescing horizons: a 1 µs `max_slice` (one packet per
//!    slice — the per-packet executor, emulated), a random mid-range
//!    horizon, and the unbounded default (whole sessions per event).
//! 2. For a fixed horizon the scheduling statistics (`events_popped`,
//!    `packets`) are sharding-invariant: every event's timestamp derives
//!    from its station alone, never from the worker that pops it.
//! 3. The executor admits every station but only ever holds the stations
//!    whose intervals overlap (`peak_active` ≪ population) — the
//!    O(active stations) memory claim, asserted on the reduced metropolis
//!    family.
//! 4. A phase splice landing strictly inside a coalesced slice is handled
//!    by the batched path exactly as per packet (the regression case for
//!    slice-grained draining).
//!
//! Together these license `executor = "virtual_time"` (with any
//! `max_slice_secs`) in any committed spec: it changes how a scenario is
//! scheduled, never what it reports.

use bench::scenario::{
    default_scenarios_dir, execute_scenario, load_spec, spec_files, train_for, ScenarioSpec,
};
use bench::Executor;
use proptest::prelude::*;
use wlan_sim::time::SimDuration;

/// Shrinks a committed spec to an equivalence-test size: at most `target`
/// stations (group counts scaled proportionally), sessions capped at 30 s,
/// and events aimed at stations that no longer exist dropped. Everything
/// else — defenses, staggers, adversary, window — stays as committed.
fn reduced(mut spec: ScenarioSpec, target: usize) -> ScenarioSpec {
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    if total > target {
        for group in &mut spec.stations {
            group.count = (group.count * target / total).max(1);
        }
    }
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    for group in &mut spec.stations {
        group.secs = group.secs.min(30.0);
    }
    spec.events
        .retain(|event| event.station.is_none_or(|s| s < total));
    spec
}

proptest! {
    // Each case re-trains an adversary per scenario family, so a handful of
    // cases is already hundreds of station sessions.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn virtual_time_reproduces_the_pool_on_every_committed_family(
        seed in 0u64..10_000,
        horizon_secs in 0.05f64..20.0,
    ) {
        let files = spec_files(&default_scenarios_dir()).expect("scenarios/ exists");
        prop_assert!(files.len() >= 5, "expected the committed families, found {files:?}");
        for file in files {
            let mut spec = reduced(load_spec(&file).unwrap_or_else(|e| panic!("{e}")), 8);
            spec.seed = seed;
            let scenario = spec
                .build()
                .unwrap_or_else(|e| panic!("{}: reduced spec must build: {e}", file.display()));
            let adversary = train_for(&scenario);
            let (pool_report, pool_stats) = execute_scenario(&scenario, &adversary, Executor::Pooled)
                .unwrap_or_else(|e| panic!("{}: pool run: {e}", file.display()));
            // One packet per slice (the per-packet executor, emulated), an
            // arbitrary horizon, and unbounded coalescing: all of them must
            // reproduce the pool bit for bit at every worker count.
            let horizons = [
                Some(SimDuration::from_secs_f64(1e-6)),
                Some(SimDuration::from_secs_f64(horizon_secs)),
                None,
            ];
            for max_slice in horizons {
                let mut events_popped = None;
                for workers in [1usize, 2, 8] {
                    let executor = Executor::VirtualTime {
                        workers: Some(workers),
                        max_slice,
                    };
                    let (vt_report, stats) = execute_scenario(&scenario, &adversary, executor)
                        .unwrap_or_else(|e| panic!("{}: virtual-time run: {e}", file.display()));
                    prop_assert!(
                        vt_report == pool_report,
                        "{}: seed {} diverged at {} workers, max_slice {:?}",
                        file.display(),
                        seed,
                        workers,
                        max_slice
                    );
                    prop_assert_eq!(stats.admitted, scenario.station_count());
                    prop_assert!(
                        stats.packets == pool_stats.packets,
                        "both executors drain the same packets"
                    );
                    // For a fixed horizon, the event count is a property of
                    // the stations, not of the sharding.
                    match events_popped {
                        None => events_popped = Some(stats.events_popped),
                        Some(expected) => prop_assert!(
                            expected == stats.events_popped,
                            "events popped must not depend on the worker count"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn the_event_core_holds_only_the_overlapping_stations() {
    // The metropolis family reduced to 60 stations, with the stagger
    // stretched so sessions barely overlap: a 20 s session every 10 s means
    // at most a few stations are ever live together, out of 60 admitted.
    let path = default_scenarios_dir().join("metropolis.toml");
    let mut spec = reduced(load_spec(&path).unwrap_or_else(|e| panic!("{e}")), 60);
    for group in &mut spec.stations {
        group.stagger_secs = 10.0;
    }
    // The committed events are scheduled against the 10 ms stagger; against
    // the stretched one they'd fire outside their stations' intervals.
    spec.events.clear();
    let scenario = spec.build().expect("stretched metropolis builds");
    let total = scenario.station_count();
    assert!(
        total >= 50,
        "reduction kept a meaningful population: {total}"
    );
    let adversary = train_for(&scenario);
    let (report, stats) = execute_scenario(&scenario, &adversary, Executor::virtual_time())
        .expect("virtual-time run");
    assert_eq!(stats.admitted, total, "every station was admitted");
    assert!(
        stats.peak_active <= 8,
        "only overlapping sessions are live at once, got peak_active = {}",
        stats.peak_active
    );
    assert!(
        stats.virtual_secs > 500.0,
        "the virtual clock spans the stagger"
    );
    // Unbounded coalescing drains each station in one go: exactly one
    // admission and one retirement event per station.
    assert_eq!(stats.events_popped, 2 * total as u64);
    assert!(
        stats.packets_per_event() > 10.0,
        "whole sessions coalesce into single events, got {:.1} packets/event",
        stats.packets_per_event()
    );
    // And the schedule-aware execution still reports exactly what the pool
    // reports station by station.
    let (pool_report, _) =
        execute_scenario(&scenario, &adversary, Executor::Pooled).expect("pool run");
    assert_eq!(report, pool_report);
}

#[test]
fn a_splice_landing_mid_slice_matches_the_pool() {
    // The committed metropolis events splice station 7 at session-relative
    // 9 s and station 2 at 10 s. With horizons that are neither divisors
    // nor multiples of those times, the splice boundary lands strictly
    // inside a coalesced slice, so `offer_slice` must split the batch at
    // the boundary exactly where a per-packet feed would have advanced the
    // schedule.
    let path = default_scenarios_dir().join("metropolis.toml");
    let mut spec = reduced(load_spec(&path).unwrap_or_else(|e| panic!("{e}")), 8);
    spec.seed = 41;
    assert!(
        !spec.events.is_empty(),
        "the reduced metropolis keeps its committed splice/churn events"
    );
    let scenario = spec.build().expect("reduced metropolis builds");
    let adversary = train_for(&scenario);
    let (pool_report, _) =
        execute_scenario(&scenario, &adversary, Executor::Pooled).expect("pool run");
    for horizon_secs in [3.7, 9.9, 60.0] {
        let executor =
            Executor::virtual_time().with_max_slice(SimDuration::from_secs_f64(horizon_secs));
        let (vt_report, _) =
            execute_scenario(&scenario, &adversary, executor).expect("virtual-time run");
        assert_eq!(
            vt_report, pool_report,
            "a splice inside a {horizon_secs} s slice diverged from the pool"
        );
    }
    // The unbounded default coalesces the whole session — splices included
    // — into the admission event.
    let (vt_report, stats) = execute_scenario(&scenario, &adversary, Executor::virtual_time())
        .expect("virtual-time run");
    assert_eq!(vt_report, pool_report);
    assert_eq!(stats.events_popped, 2 * scenario.station_count() as u64);
}
