//! The batched fast path's acceptance contract.
//!
//! `StagePipeline::process_batch` / `PacketStage::process_slice` promise to
//! be **byte-identical** to the per-packet path — same `(flow, packet)`
//! stream, same order, same overhead ledger — for every registered defense
//! and for composed pipelines, whatever the micro-batch boundaries. This
//! suite property-tests that promise: arbitrary slice sizes (including
//! size-1 slices, which degenerate to the per-packet path) against the
//! per-packet reference, plus the `STAGE_BATCH`-sized `run` entry point.
//! Flushing stays a `finish`-time event: chopping a stream into slices must
//! never flush mid-session.

use bench::pipeline::{defense_pipeline, DefenseKind};
use defenses::overhead::Overhead;
use defenses::padding::PacketPadder;
use defenses::stage::{FlowId, StagePipeline};
use proptest::prelude::*;
use reshape_core::ranges::SizeRanges;
use reshape_core::scheduler::OrthogonalRanges;
use reshape_core::stage::ReshapeStage;
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;

const CALIB_SECS: f64 = 30.0;
const INTERFACES: usize = 3;

/// Expands a seed into 1–10 slice lengths in `1..=199` (the vendored
/// proptest shim has no collection strategy, so the vector is derived).
fn chunk_sizes(mut s: u64) -> Vec<usize> {
    let n = (s % 10 + 1) as usize;
    let mut sizes = Vec::with_capacity(n);
    for _ in 0..n {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sizes.push(((s >> 33) % 199 + 1) as usize);
    }
    sizes
}

type Emitted = Vec<(FlowId, PacketRecord)>;

fn trace_for(app: AppKind, seed: u64) -> Trace {
    SessionGenerator::new(app, seed).generate_secs(20.0)
}

/// The per-packet reference: one `process` call per packet, then `finish`.
fn per_packet(pipeline: &mut StagePipeline, trace: &Trace) -> (Emitted, Overhead) {
    let mut out = Vec::new();
    for packet in trace.packets() {
        pipeline.process(packet, |flow, p| out.push((flow, *p)));
    }
    pipeline.finish(|flow, p| out.push((flow, *p)));
    (out, pipeline.overhead())
}

/// The batched path with caller-chosen slice boundaries: the trace is chopped
/// into chunks whose lengths cycle through `sizes`, each fed to
/// `process_batch`, then `finish`.
fn batched(pipeline: &mut StagePipeline, trace: &Trace, sizes: &[usize]) -> (Emitted, Overhead) {
    let mut out = Vec::new();
    let mut rest = trace.packets();
    let mut cut = 0usize;
    while !rest.is_empty() {
        let len = sizes[cut % sizes.len()].min(rest.len());
        cut += 1;
        let (chunk, tail) = rest.split_at(len);
        pipeline.process_batch(chunk, |flow, p| out.push((flow, *p)));
        rest = tail;
    }
    pipeline.finish(|flow, p| out.push((flow, *p)));
    (out, pipeline.overhead())
}

/// The source-draining entry point (fixed `STAGE_BATCH` micro-batches).
fn via_run(pipeline: &mut StagePipeline, trace: &Trace) -> (Emitted, Overhead) {
    let mut out = Vec::new();
    pipeline.run(&mut trace.stream(), |flow, p| out.push((flow, *p)));
    (out, pipeline.overhead())
}

/// The composed pad∘OR pipeline (per-vif padding behind the reshaper) — a
/// composition no `DefenseKind` covers, so slice handoff between stages with
/// different flow fan-outs is exercised too.
fn pad_then_or() -> StagePipeline {
    StagePipeline::new()
        .with_stage(PacketPadder::new().stage())
        .with_stage(ReshapeStage::new(Box::new(OrthogonalRanges::new(
            SizeRanges::for_interface_count(INTERFACES).expect("valid interface count"),
        ))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn every_defense_kind_is_slice_invariant(
        seed in 0u64..10_000,
        sizes_seed in 0u64..1_000_000,
    ) {
        let sizes = chunk_sizes(sizes_seed);
        for kind in DefenseKind::ALL {
            let app = AppKind::BitTorrent;
            let trace = trace_for(app, seed);
            let build =
                || defense_pipeline(kind, app, INTERFACES, seed, CALIB_SECS, Some(&trace));
            let reference = per_packet(&mut build(), &trace);
            let sliced = batched(&mut build(), &trace, &sizes);
            prop_assert!(
                sliced == reference,
                "{kind:?}: slicing at {sizes:?} changed the output (seed {seed})"
            );
            let ran = via_run(&mut build(), &trace);
            prop_assert!(
                ran == reference,
                "{kind:?}: run() diverged from the per-packet path (seed {seed})"
            );
        }
    }

    #[test]
    fn composed_pipelines_are_slice_invariant(
        seed in 0u64..10_000,
        sizes_seed in 0u64..1_000_000,
    ) {
        let sizes = chunk_sizes(sizes_seed);
        let trace = trace_for(AppKind::BitTorrent, seed);
        // pad∘OR, built by hand; morph∘OR is DefenseKind::MorphThenReshape.
        let reference = per_packet(&mut pad_then_or(), &trace);
        let sliced = batched(&mut pad_then_or(), &trace, &sizes);
        prop_assert!(
            sliced == reference,
            "pad∘OR: slicing at {sizes:?} changed the output (seed {seed})"
        );

        // A nested pipeline as a stage of an outer one: the outer slice path
        // must delegate whole slices to the inner pipeline unchanged.
        let nested = || {
            StagePipeline::new()
                .with_stage(pad_then_or())
                .with_stage(PacketPadder::new().stage())
        };
        let nested_reference = per_packet(&mut nested(), &trace);
        let nested_sliced = batched(&mut nested(), &trace, &sizes);
        prop_assert!(
            nested_sliced == nested_reference,
            "nested pad∘OR∘pad: slicing at {sizes:?} changed the output (seed {seed})"
        );
    }
}

#[test]
fn slices_never_flush_mid_session() {
    // A slice boundary is not a session end: the morphing calibration and
    // every partitioning stage keep their state across process_batch calls,
    // so feeding two half-traces must differ from two separate sessions
    // whenever the defense carries cross-packet state (round-robin does).
    let trace = trace_for(AppKind::BitTorrent, 7);
    let kind = DefenseKind::RoundRobin;
    let build = || defense_pipeline(kind, AppKind::BitTorrent, INTERFACES, 7, CALIB_SECS, None);

    let (whole, _) = batched(&mut build(), &trace, &[trace.len()]);
    let (halved, _) = batched(&mut build(), &trace, &[trace.len() / 2]);
    assert_eq!(whole, halved, "slice boundaries must be invisible");

    // Independent sessions (reset between halves) genuinely differ, which is
    // what makes the invariance above a non-trivial statement.
    let mut fresh = build();
    let half = trace.len() / 2;
    let mut restarted = Vec::new();
    fresh.process_batch(&trace.packets()[..half], |f, p| restarted.push((f, *p)));
    fresh.finish(|f, p| restarted.push((f, *p)));
    fresh.reset();
    fresh.process_batch(&trace.packets()[half..], |f, p| restarted.push((f, *p)));
    fresh.finish(|f, p| restarted.push((f, *p)));
    assert_ne!(whole, restarted, "resetting mid-stream must be observable");
}
