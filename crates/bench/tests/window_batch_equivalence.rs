//! The window-batch deferral's acceptance contract.
//!
//! The streaming machine buffers windows closed inside a drain slice and
//! flushes them through `WindowScorer::score_slice` in `WINDOW_BATCH`
//! blocks. Deferral is legal only because nothing observable depends on
//! *when* a window is scored between its close and the next phase boundary:
//! windows flush in exact close order, the frozen scorer is stateless, and
//! the prequential evaluator's default `score_slice` runs the same
//! test-then-train loop per example. These tests pin that contract:
//!
//! 1. For a mixed population (different apps, defenses, a mid-session
//!    splice), every batch size — per-window `1`, an arbitrary small block,
//!    the default `WINDOW_BATCH`, and one larger than any station's window
//!    count — produces **bit-identical** `ScheduledReport`s against a frozen
//!    ensemble, on the pool and on the virtual-time executor at 1, 2, and 8
//!    workers (coalesced and slice-bounded).
//! 2. The same holds for live prequential scoring **including the accuracy
//!    timeline**: the test-then-train ordering survives batching bit for
//!    bit, so a deferred flush can never let a window train before an
//!    earlier window tested.

use bench::pipeline::{train_adversary, train_adversary_online};
use bench::{
    DefenseKind, DefenseSpec, Executor, ExperimentConfig, FrozenScorer, StationRun, WINDOW_BATCH,
};
use classifier::ensemble::AdversaryEnsemble;
use classifier::online::{OnlineAdversary, PrequentialEvaluator, PrequentialPoint};
use classifier::window::FeatureMode;
use proptest::prelude::*;
use traffic_gen::app::AppKind;
use traffic_gen::spec::TrafficSpec;
use wlan_sim::time::SimDuration;

const STATIONS: usize = 4;
const WINDOW_SECS: u64 = 2;

/// Station `i` of the mixed population: apps and defenses cycle, station 0
/// splices its defense mid-session so a phase boundary closes with windows
/// still pending in the batch buffer.
fn run_of(i: usize, seed: u64, batch: usize) -> StationRun<'static> {
    let kinds = [
        DefenseKind::Padding,
        DefenseKind::Orthogonal,
        DefenseKind::Morphing,
        DefenseKind::None,
    ];
    let mut run = StationRun::new(TrafficSpec::bounded(
        AppKind::ALL[i % AppKind::COUNT],
        seed.wrapping_add(i as u64),
        20.0,
    ))
    .defense(DefenseSpec::from_kind(kinds[i % kinds.len()]))
    .interfaces(3)
    .window(SimDuration::from_secs(WINDOW_SECS))
    .feature_mode(FeatureMode::Full)
    .window_batch(batch);
    if i == 0 {
        run = run.splice(9.0, DefenseSpec::from_kind(DefenseKind::Padding));
    }
    run
}

/// Every executor shape the contract covers: the work-stealing pool, the
/// coalescing virtual-time executor at several worker counts, and a
/// slice-bounded virtual-time run whose horizon lands splices mid-slice.
fn executors() -> Vec<Executor> {
    let mut shapes = vec![Executor::Pooled];
    for workers in [1usize, 2, 8] {
        shapes.push(Executor::VirtualTime {
            workers: Some(workers),
            max_slice: None,
        });
    }
    shapes.push(Executor::VirtualTime {
        workers: Some(2),
        max_slice: Some(SimDuration::from_secs_f64(3.7)),
    });
    shapes
}

fn frozen_reports(
    adversary: &AdversaryEnsemble,
    executor: Executor,
    seed: u64,
    batch: usize,
) -> Vec<bench::streaming::ScheduledReport> {
    executor
        .run(
            STATIONS,
            |i| run_of(i, seed, batch),
            |_| FrozenScorer::new(adversary),
            |_, report, _| report,
        )
        .expect("frozen run")
        .results
}

fn live_reports(
    base: &OnlineAdversary,
    executor: Executor,
    seed: u64,
    batch: usize,
) -> Vec<(bench::streaming::ScheduledReport, Vec<PrequentialPoint>)> {
    executor
        .run(
            STATIONS,
            |i| run_of(i, seed, batch),
            |_| PrequentialEvaluator::new(base.clone(), 5),
            |_, report, evaluator| (report, evaluator.timeline().to_vec()),
        )
        .expect("live run")
        .results
}

proptest! {
    // Each case trains the quick adversary and runs the population on every
    // executor shape at four batch sizes, so two cases is already a broad
    // sweep.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn any_window_batch_reproduces_the_per_window_reports(
        seed in 0u64..10_000,
        small_batch in 2usize..7,
    ) {
        let frozen = train_adversary(&ExperimentConfig::quick(), FeatureMode::Full);
        let base = train_adversary_online(&ExperimentConfig::quick(), FeatureMode::Full)
            .into_adversary();

        // The reference: per-window scoring (batch 1) on the pool.
        let frozen_baseline = frozen_reports(&frozen, Executor::Pooled, seed, 1);
        let live_baseline = live_reports(&base, Executor::Pooled, seed, 1);
        prop_assert!(
            frozen_baseline.iter().any(|r| r.windows() > 10),
            "the population must close enough windows to exercise batching"
        );
        prop_assert!(
            live_baseline.iter().any(|(_, timeline)| !timeline.is_empty()),
            "the live runs must record prequential timelines"
        );

        for executor in executors() {
            for batch in [1, small_batch, WINDOW_BATCH, 10_000] {
                let frozen_run = frozen_reports(&frozen, executor, seed, batch);
                prop_assert!(
                    frozen_run == frozen_baseline,
                    "frozen reports diverged: {executor:?}, batch {batch}, seed {seed}"
                );
                let live_run = live_reports(&base, executor, seed, batch);
                prop_assert!(
                    live_run == live_baseline,
                    "live reports or timelines diverged: {executor:?}, batch {batch}, seed {seed}"
                );
            }
        }
    }
}
