//! The sliced feature-extraction plane's machine-level acceptance contract.
//!
//! The streaming machine now routes every drain slice's staged output
//! through `FlowWindowers::push_slice` — grouping, bank dispatch and run
//! folding all slice-grained. Two properties license that:
//!
//! 1. **Hand-rolled per-packet reference**: an independent evaluation built
//!    from public APIs only — `StagePipeline::process` one packet at a time,
//!    `FlowWindowers::push` one packet at a time, every window scored the
//!    moment it closes — reproduces `StationRun::run`'s windows, hits and
//!    prequential timeline **bit for bit**, frozen and live, across defense
//!    kinds. (PR 7 pinned `process_batch == process`; this pins the whole
//!    sliced plane downstream of it.)
//! 2. **Committed families across executors**: with sliced windowing on the
//!    hot path, every committed scenario family's report stays bit-identical
//!    between the pool and the virtual-time executor at 1, 2 and 8 workers,
//!    and a mixed live population's prequential timelines survive the same
//!    sweep unchanged.

use bench::pipeline::{train_adversary, train_adversary_online};
use bench::scenario::{
    default_scenarios_dir, execute_scenario, load_spec, spec_files, train_for, DefenseSpec,
    ScenarioSpec,
};
use bench::streaming::STATION_CALIB_SECS;
use bench::{DefenseKind, Executor, ExperimentConfig, FrozenScorer, StationRun};
use classifier::online::{OnlineAdversary, PrequentialEvaluator, PrequentialPoint};
use classifier::stream::FlowWindowers;
use classifier::window::{FeatureMode, DEFAULT_MIN_PACKETS};
use defenses::spec::StageContext;
use proptest::prelude::*;
use traffic_gen::app::AppKind;
use traffic_gen::spec::TrafficSpec;
use traffic_gen::stream::PacketSource;
use wlan_sim::time::SimDuration;

const WINDOW_SECS: u64 = 2;
const SESSION_SECS: f64 = 20.0;

/// The per-packet reference: the same traffic, defense and windowing
/// configuration as [`station_run`], evaluated one packet at a time with no
/// slice anywhere — `process` per packet, `push` per packet, one `score`
/// call per closed window. Returns `(windows, hits)` and leaves the live
/// evaluator (when given) in its end-of-session state.
fn per_packet_reference(
    app: AppKind,
    seed: u64,
    kind: DefenseKind,
    mut score: impl FnMut(&classifier::stream::WindowExample) -> usize,
) -> (u64, u64) {
    let ctx = StageContext::live(app, seed, STATION_CALIB_SECS);
    let mut pipeline = DefenseSpec::from_kind(kind)
        .build(&ctx, 3)
        .expect("committed kinds build");
    let mut windowers = FlowWindowers::for_app(
        SimDuration::from_secs(WINDOW_SECS),
        DEFAULT_MIN_PACKETS,
        FeatureMode::Full,
        app,
    );
    let mut windows = 0u64;
    let mut hits = 0u64;
    let mut on_window = |example: &classifier::stream::WindowExample| {
        windows += 1;
        if score(example) == example.1 {
            hits += 1;
        }
    };
    let mut source = TrafficSpec::bounded(app, seed, SESSION_SECS).build();
    while let Some(packet) = source.next_packet() {
        pipeline.process(&packet, |flow, staged| {
            if let Some(example) = windowers.push(flow as usize, staged) {
                on_window(&example);
            }
        });
    }
    pipeline.finish(|flow, staged| {
        if let Some(example) = windowers.push(flow as usize, staged) {
            on_window(&example);
        }
    });
    for example in windowers.finish() {
        on_window(&example);
    }
    (windows, hits)
}

/// The sliced path under test, configured identically to the reference.
fn station_run(app: AppKind, seed: u64, kind: DefenseKind) -> StationRun<'static> {
    StationRun::new(TrafficSpec::bounded(app, seed, SESSION_SECS))
        .defense(DefenseSpec::from_kind(kind))
        .interfaces(3)
        .window(SimDuration::from_secs(WINDOW_SECS))
        .feature_mode(FeatureMode::Full)
}

proptest! {
    // Each case trains both adversaries and sweeps four defense kinds, so a
    // couple of cases already covers the plane broadly.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn sliced_machine_matches_a_hand_rolled_per_packet_evaluation(
        seed in 0u64..10_000,
    ) {
        let frozen = train_adversary(&ExperimentConfig::quick(), FeatureMode::Full);
        let base = train_adversary_online(&ExperimentConfig::quick(), FeatureMode::Full)
            .into_adversary();
        let kinds = [
            DefenseKind::None,
            DefenseKind::Padding,
            DefenseKind::Orthogonal,
            DefenseKind::Morphing,
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let app = AppKind::ALL[i % AppKind::COUNT];
            let station_seed = seed.wrapping_add(i as u64);

            // Frozen: the stateless batch ensemble.
            let (windows, hits) = per_packet_reference(app, station_seed, kind, |example| {
                frozen.predict_majority(&example.0)
            });
            let report = station_run(app, station_seed, kind)
                .run(&mut FrozenScorer::new(&frozen))
                .expect("station runs");
            prop_assert!(report.windows() == windows, "frozen windows diverged: {:?}", kind);
            prop_assert!(report.windows_identified() == hits, "frozen hits diverged: {:?}", kind);

            // Live: test-then-train, so the evaluator's whole trajectory —
            // not just the counts — must match window for window.
            let mut reference_eval = PrequentialEvaluator::new(base.clone(), 5);
            let (windows, hits) = per_packet_reference(app, station_seed, kind, |example| {
                reference_eval.absorb(example)
            });
            let mut live_eval = PrequentialEvaluator::new(base.clone(), 5);
            let report = station_run(app, station_seed, kind)
                .run(&mut live_eval)
                .expect("station runs");
            prop_assert!(report.windows() == windows, "live windows diverged: {:?}", kind);
            prop_assert!(report.windows_identified() == hits, "live hits diverged: {:?}", kind);
            prop_assert!(
                reference_eval.timeline() == live_eval.timeline(),
                "prequential timelines diverged: {:?}",
                kind
            );
            prop_assert_eq!(reference_eval.matrix(), live_eval.matrix());
        }
    }
}

/// Shrinks a committed spec to an equivalence-test size (the same reduction
/// rule `executor_equivalence` uses).
fn reduced(mut spec: ScenarioSpec, target: usize) -> ScenarioSpec {
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    if total > target {
        for group in &mut spec.stations {
            group.count = (group.count * target / total).max(1);
        }
    }
    let total: usize = spec.stations.iter().map(|g| g.count).sum();
    for group in &mut spec.stations {
        group.secs = group.secs.min(30.0);
    }
    spec.events
        .retain(|event| event.station.is_none_or(|s| s < total));
    spec
}

fn executors() -> [Executor; 4] {
    [
        Executor::Pooled,
        Executor::VirtualTime {
            workers: Some(1),
            max_slice: None,
        },
        Executor::VirtualTime {
            workers: Some(2),
            max_slice: None,
        },
        Executor::VirtualTime {
            workers: Some(8),
            max_slice: None,
        },
    ]
}

#[test]
fn sliced_windowing_keeps_every_committed_family_executor_invariant() {
    let files = spec_files(&default_scenarios_dir()).expect("scenarios/ exists");
    assert!(
        files.len() >= 5,
        "expected the committed families, found {files:?}"
    );
    for file in files {
        let spec = reduced(load_spec(&file).unwrap_or_else(|e| panic!("{e}")), 6);
        let scenario = spec
            .build()
            .unwrap_or_else(|e| panic!("{}: reduced spec must build: {e}", file.display()));
        let adversary = train_for(&scenario);
        let mut baseline = None;
        for executor in executors() {
            let (report, _) = execute_scenario(&scenario, &adversary, executor)
                .unwrap_or_else(|e| panic!("{}: {executor:?}: {e}", file.display()));
            match &baseline {
                None => baseline = Some(report),
                Some(expected) => assert_eq!(
                    &report,
                    expected,
                    "{}: {executor:?} diverged from the pool",
                    file.display()
                ),
            }
        }
    }
}

#[test]
fn sliced_windowing_keeps_live_timelines_executor_invariant() {
    // A mixed live population (different apps and defenses): the prequential
    // timelines — the strictest observable, one point per scored window —
    // must be identical on every executor shape.
    let base: OnlineAdversary =
        train_adversary_online(&ExperimentConfig::quick(), FeatureMode::Full).into_adversary();
    let kinds = [
        DefenseKind::Padding,
        DefenseKind::Orthogonal,
        DefenseKind::Morphing,
        DefenseKind::None,
    ];
    let run_of = |i: usize| {
        station_run(
            AppKind::ALL[i % AppKind::COUNT],
            41 + i as u64,
            kinds[i % kinds.len()],
        )
    };
    let mut baseline: Option<Vec<(u64, Vec<PrequentialPoint>)>> = None;
    for executor in executors() {
        let results: Vec<(u64, Vec<PrequentialPoint>)> = executor
            .run(
                4,
                run_of,
                |_| PrequentialEvaluator::new(base.clone(), 5),
                |_, report, evaluator| (report.windows(), evaluator.timeline().to_vec()),
            )
            .expect("live run")
            .results;
        assert!(
            results.iter().any(|(windows, _)| *windows > 0),
            "the population must close windows"
        );
        match &baseline {
            None => baseline = Some(results),
            Some(expected) => assert_eq!(&results, expected, "{executor:?} diverged"),
        }
    }
}
