//! The scenario engine's acceptance contract.
//!
//! 1. Every committed spec under `scenarios/` parses and compiles through
//!    `ScenarioSpec::build()` (what CI's `scenario_run --check` gates on).
//! 2. The committed throughput baseline carries exactly the workload
//!    `bench_json` hard-coded before the refactor, and the pipelines built
//!    from its specs are **byte-identical** to independent hand-coded
//!    constructions of the same defenses — so the refactored `bench_json`
//!    reproduces its prior numbers from data.
//! 3. The shorthand ↔ declarative bridge round-trips every `DefenseKind`.

use bench::pipeline::DefenseKind;
use bench::scenario::{default_scenarios_dir, load_spec, spec_files, AdversaryMode, DefenseSpec};
use bench::ExperimentConfig;
use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::spec::StageContext;
use defenses::stage::StagePipeline;
use defenses::{FrequencyHopper, PacketPadder, PseudonymRotator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reshape_core::ranges::SizeRanges;
use reshape_core::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use reshape_core::stage::ReshapeStage;
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;

#[test]
fn every_committed_scenario_spec_parses_and_builds() {
    let dir = default_scenarios_dir();
    let files = spec_files(&dir).expect("scenarios/ exists");
    assert!(
        files.len() >= 4,
        "expected the committed scenario families, found {files:?}"
    );
    for file in files {
        let spec = load_spec(&file).unwrap_or_else(|e| panic!("{e}"));
        let scenario = spec
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        assert!(scenario.station_count() > 0, "{}", file.display());
    }
}

#[test]
fn throughput_baseline_spec_pins_the_historical_bench_json_workload() {
    // The exact parameters bench_json hard-coded before the scenario engine:
    // BitTorrent seed 1 for 60 s, W = 5 s, 3 interfaces, quick()-sized
    // adversary, stations in padding/morphing/morph∘OR order.
    let spec = load_spec(&default_scenarios_dir().join("throughput_baseline.toml"))
        .expect("committed baseline parses");
    let scenario = spec.build().expect("committed baseline builds");
    assert_eq!(scenario.window.as_secs_f64(), 5.0);
    assert_eq!(scenario.calib_secs, 60.0);
    assert_eq!(scenario.adversary.mode, AdversaryMode::Batch);
    assert_eq!(scenario.adversary.train, ExperimentConfig::quick());
    let kinds: Vec<DefenseKind> = scenario
        .stations()
        .map(|s| s.defense.as_kind().expect("shorthand kinds"))
        .collect();
    assert_eq!(
        kinds,
        vec![
            DefenseKind::Padding,
            DefenseKind::Morphing,
            DefenseKind::MorphThenReshape
        ]
    );
    for station in scenario.stations() {
        assert_eq!(station.traffic.app, AppKind::BitTorrent);
        assert_eq!(station.traffic.seed, 1);
        assert_eq!(station.traffic.secs, Some(60.0));
        assert_eq!(station.interfaces, 3);
    }
    // The spec'd trace is the historical workload trace, packet for packet.
    assert_eq!(
        scenario.station(0).traffic.trace(),
        SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(60.0)
    );
}

/// Streams `trace` through `pipeline` and collects every emitted
/// `(flow, packet)` pair.
fn staged(mut pipeline: StagePipeline, trace: &Trace) -> Vec<(u32, PacketRecord)> {
    let mut out = Vec::new();
    pipeline.run(&mut trace.stream(), |flow, p| out.push((flow, *p)));
    out
}

/// The historical hand-coded pipeline of a [`DefenseKind`], reconstructed
/// independently of the declarative path (this is what
/// `bench::pipeline::defense_pipeline` did before the refactor).
fn hand_coded_pipeline(
    kind: DefenseKind,
    app: AppKind,
    interfaces: usize,
    seed: u64,
    calib_secs: f64,
    source: Option<&Trace>,
) -> StagePipeline {
    let scheduler: Option<Box<dyn ReshapeAlgorithm>> = match kind {
        DefenseKind::Random => Some(Box::new(RandomAssign::new(interfaces, seed))),
        DefenseKind::RoundRobin => Some(Box::new(RoundRobin::new(interfaces))),
        DefenseKind::Orthogonal => Some(Box::new(OrthogonalRanges::new(
            SizeRanges::for_interface_count(interfaces).expect("valid"),
        ))),
        DefenseKind::OrthogonalModulo => Some(Box::new(OrthogonalModulo::new(interfaces))),
        _ => None,
    };
    if let Some(algorithm) = scheduler {
        return StagePipeline::new().with_stage(ReshapeStage::new(algorithm));
    }
    let morphing = |app: AppKind| {
        let target_app = paper_morphing_target(app);
        let target = SessionGenerator::new(target_app, seed ^ 0xfeed).generate_secs(calib_secs);
        let morpher = TrafficMorpher::from_target_trace(target_app, &target);
        match source {
            Some(trace) => morpher.stage_for_source_trace(trace),
            None => {
                let calib = SessionGenerator::new(app, seed ^ 0xca1b).generate_secs(calib_secs);
                morpher.stage_for_source_trace(&calib)
            }
        }
    };
    match kind {
        DefenseKind::None => StagePipeline::new(),
        DefenseKind::FrequencyHopping => {
            StagePipeline::new().with_stage(FrequencyHopper::default().stage())
        }
        DefenseKind::Pseudonym => StagePipeline::new()
            .with_stage(PseudonymRotator::default().stage_with_rng(StdRng::seed_from_u64(seed))),
        DefenseKind::Padding => StagePipeline::new().with_stage(PacketPadder::new().stage()),
        DefenseKind::Morphing => StagePipeline::new().with_stage(morphing(app)),
        DefenseKind::MorphThenReshape => {
            StagePipeline::new()
                .with_stage(morphing(app))
                .with_stage(ReshapeStage::new(Box::new(OrthogonalRanges::new(
                    SizeRanges::for_interface_count(interfaces).expect("valid"),
                ))))
        }
        _ => unreachable!("reshaping kinds handled above"),
    }
}

#[test]
fn spec_built_pipelines_are_byte_identical_to_the_hand_coded_constructions() {
    let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(40.0);
    for kind in DefenseKind::ALL {
        let ctx = StageContext {
            app: AppKind::BitTorrent,
            seed: 1,
            calib_secs: 40.0,
            source: Some(&trace),
        };
        let from_spec = DefenseSpec::from_kind(kind)
            .build(&ctx, 3)
            .expect("valid spec");
        let reference = hand_coded_pipeline(kind, AppKind::BitTorrent, 3, 1, 40.0, Some(&trace));
        assert_eq!(
            staged(from_spec, &trace),
            staged(reference, &trace),
            "{kind:?}: spec-built pipeline diverged from the historical construction"
        );
    }
}

#[test]
fn kind_round_trips_through_the_declarative_form() {
    for kind in DefenseKind::ALL {
        let spec = DefenseSpec::from_kind(kind);
        assert_eq!(spec.as_kind(), Some(kind));
    }
    // A custom stage list is NOT a shorthand kind.
    let custom = DefenseSpec {
        stages: vec![bench::scenario::StageSpec::Defense(
            defenses::spec::DefenseStageSpec::Padding { size: Some(400) },
        )],
    };
    assert_eq!(custom.as_kind(), None);
}
