//! Criterion bench for the Table I pipeline (per-interface traffic features).

use bench::corpus::ExperimentConfig;
use bench::tables::table1;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("table1_features");
    group.sample_size(10);
    group.bench_function("features_all_apps", |b| {
        b.iter(|| table1(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
