//! Criterion bench for the Table III pipeline (classification accuracy, longer window).

use bench::corpus::ExperimentConfig;
use bench::tables::table3;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table3(c: &mut Criterion) {
    let config = ExperimentConfig {
        window_secs: 20.0,
        ..ExperimentConfig::quick()
    };
    let mut group = c.benchmark_group("table3_accuracy_w60");
    group.sample_size(10);
    group.bench_function("train_and_evaluate_long_window", |b| {
        b.iter(|| table3(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
