//! Criterion bench for the Figure 4 pipeline (OR over size ranges on BitTorrent).

use bench::figures::figure4;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_or_ranges");
    group.sample_size(10);
    group.bench_function("reshape_bt_30s", |b| {
        b.iter(|| figure4(std::hint::black_box(7), std::hint::black_box(30.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
