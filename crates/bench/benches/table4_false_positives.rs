//! Criterion bench for the Table IV pipeline (false-positive rates).

use bench::corpus::ExperimentConfig;
use bench::tables::table4;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table4(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("table4_false_positives");
    group.sample_size(10);
    group.bench_function("false_positive_rates", |b| {
        b.iter(|| table4(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
