//! Criterion bench for the Table II pipeline (classification accuracy, W = 5 s).

use bench::corpus::ExperimentConfig;
use bench::tables::table2;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("table2_accuracy_w5");
    group.sample_size(10);
    group.bench_function("train_and_evaluate_five_defenses", |b| {
        b.iter(|| table2(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
