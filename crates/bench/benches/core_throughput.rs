//! Micro-benchmarks of the core primitives: per-packet scheduling cost of the
//! reshaping algorithms (the paper argues OR is O(N) with a trivial constant),
//! feature extraction, and classifier inference.

use classifier::features::FeatureVector;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use reshape_core::online::OnlineReshaper;
use reshape_core::ranges::SizeRanges;
use reshape_core::reshaper::Reshaper;
use reshape_core::scheduler::{
    OrthogonalModulo, OrthogonalRanges, RandomAssign, ReshapeAlgorithm, RoundRobin,
};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::stream::PacketSource;

type AlgorithmFactory = Box<dyn Fn() -> Box<dyn ReshapeAlgorithm>>;

fn bench_schedulers(c: &mut Criterion) {
    let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(60.0);
    let packets = trace.len() as u64;
    let mut group = c.benchmark_group("scheduler_throughput");
    group.throughput(Throughput::Elements(packets));
    group.sample_size(20);
    let algorithms: Vec<(&str, AlgorithmFactory)> = vec![
        (
            "RA",
            Box::new(|| Box::new(RandomAssign::new(3, 7)) as Box<dyn ReshapeAlgorithm>),
        ),
        (
            "RR",
            Box::new(|| Box::new(RoundRobin::new(3)) as Box<dyn ReshapeAlgorithm>),
        ),
        (
            "OR",
            Box::new(|| {
                Box::new(OrthogonalRanges::new(SizeRanges::paper_default()))
                    as Box<dyn ReshapeAlgorithm>
            }),
        ),
        (
            "OR-mod",
            Box::new(|| Box::new(OrthogonalModulo::new(3)) as Box<dyn ReshapeAlgorithm>),
        ),
    ];
    for (name, make) in algorithms {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut reshaper = Reshaper::new(make());
                std::hint::black_box(reshaper.reshape(std::hint::black_box(&trace)))
            })
        });
    }
    group.finish();
}

fn bench_streaming_vs_batch_data_plane(c: &mut Criterion) {
    // The tentpole comparison: the same packets through the batch reshaper
    // (materialises sub-traces + assignments) versus the streaming engine
    // (touches each packet once, O(interfaces) state).
    let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(60.0);
    let mut group = c.benchmark_group("reshape_data_plane");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    group.bench_function("batch", |b| {
        b.iter(|| {
            let mut reshaper =
                Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
            std::hint::black_box(reshaper.reshape(std::hint::black_box(&trace)))
        })
    });
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut online =
                OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
            let mut source = std::hint::black_box(&trace).stream();
            while let Some(packet) = source.next_packet() {
                std::hint::black_box(online.assign(&packet));
            }
            std::hint::black_box(online.packets_seen())
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let trace = SessionGenerator::new(AppKind::Downloading, 2).generate_secs(5.0);
    let mut group = c.benchmark_group("feature_extraction");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("window_5s", |b| {
        b.iter(|| FeatureVector::from_trace(std::hint::black_box(&trace)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_streaming_vs_batch_data_plane,
    bench_feature_extraction
);
criterion_main!(benches);
