//! Criterion bench for the Table V pipeline (OR accuracy vs. interface count).

use bench::corpus::ExperimentConfig;
use bench::tables::table5;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table5(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("table5_interfaces");
    group.sample_size(10);
    group.bench_function("interface_sweep_2_3_5", |b| {
        b.iter(|| {
            table5(
                std::hint::black_box(&config),
                std::hint::black_box(&[2, 3, 5]),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
