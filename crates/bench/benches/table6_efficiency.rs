//! Criterion bench for the Table VI pipeline (padding/morphing efficiency comparison).

use bench::corpus::ExperimentConfig;
use bench::tables::table6;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table6(c: &mut Criterion) {
    let config = ExperimentConfig::quick();
    let mut group = c.benchmark_group("table6_efficiency");
    group.sample_size(10);
    group.bench_function("efficiency_comparison", |b| {
        b.iter(|| table6(std::hint::black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
