//! Criterion bench for the Figure 5 pipeline (OR via packet-size modulo).

use bench::figures::figure5;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_or_modulo");
    group.sample_size(10);
    group.bench_function("reshape_bt_30s", |b| {
        b.iter(|| figure5(std::hint::black_box(7), std::hint::black_box(30.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
