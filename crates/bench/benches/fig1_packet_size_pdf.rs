//! Criterion bench for the Figure 1 pipeline (per-application packet-size PDFs).

use bench::figures::figure1;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_packet_size_pdf");
    group.sample_size(10);
    group.bench_function("seven_app_pdfs_30s", |b| {
        b.iter(|| figure1(std::hint::black_box(7), std::hint::black_box(30.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
