//! Property tests proving the batch entry points are thin wrappers: for every
//! defense and every seed, driving the streaming [`PacketStage`] one packet at
//! a time produces byte-identical output (and an identical overhead ledger) to
//! the batch `apply` / `partition` call — the same pattern that ties the
//! online reshaper to the batch `Reshaper`.

use defenses::morphing::{paper_morphing_target, TrafficMorpher};
use defenses::stage::{FlowId, PacketStage, StageOutput, ROOT_FLOW};
use defenses::{FrequencyHopper, PacketPadder, PseudonymRotator, StagePipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

fn trace_of(app_index: usize, seed: u64, secs: f64) -> Trace {
    SessionGenerator::new(AppKind::ALL[app_index], seed).generate_secs(secs)
}

/// Streams a trace through a stage packet by packet (plus flush), as a live
/// session would, collecting the emitted `(flow, packet)` pairs.
fn drive(stage: &mut dyn PacketStage, trace: &Trace) -> Vec<(FlowId, PacketRecord)> {
    let mut out = StageOutput::new();
    let mut staged = Vec::with_capacity(trace.len());
    for packet in trace.packets() {
        out.clear();
        stage.on_packet(ROOT_FLOW, packet, &mut out);
        staged.extend(out.iter().copied());
    }
    out.clear();
    stage.flush(&mut out);
    staged.extend(out.iter().copied());
    staged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_padding_equals_batch_padding(seed in 0u64..100, app_index in 0usize..7) {
        let trace = trace_of(app_index, seed, 20.0);
        let padder = PacketPadder::new();
        let (batch, batch_overhead) = padder.apply(&trace);
        let mut stage = padder.stage();
        let staged = drive(&mut stage, &trace);
        let streamed: Vec<PacketRecord> = staged.iter().map(|&(_, p)| p).collect();
        prop_assert!(staged.iter().all(|&(f, _)| f == ROOT_FLOW));
        prop_assert_eq!(streamed.as_slice(), batch.packets());
        prop_assert_eq!(stage.overhead(), batch_overhead);
    }

    #[test]
    fn streaming_morphing_equals_batch_morphing(seed in 0u64..100, app_index in 0usize..7) {
        let trace = trace_of(app_index, seed, 20.0);
        let target_app = paper_morphing_target(AppKind::ALL[app_index]);
        let target = SessionGenerator::new(target_app, seed ^ 0xfeed).generate_secs(30.0);
        let morpher = TrafficMorpher::from_target_trace(target_app, &target);
        let (batch, batch_overhead) = morpher.apply(&trace);
        // The wrapper estimates the source CDF from the trace itself; the
        // streaming stage is handed the same calibration up front.
        let mut stage = morpher.stage_for_source_trace(&trace);
        let staged = drive(&mut stage, &trace);
        let streamed: Vec<PacketRecord> = staged.iter().map(|&(_, p)| p).collect();
        prop_assert_eq!(streamed.as_slice(), batch.packets());
        prop_assert_eq!(stage.overhead(), batch_overhead);
    }

    #[test]
    fn streaming_pseudonyms_equal_batch_partitions_per_seed(
        seed in 0u64..100,
        app_index in 0usize..7,
        period_secs in prop::sample::select(vec![5u64, 15, 60]),
    ) {
        let trace = trace_of(app_index, seed, 90.0);
        let rotator = PseudonymRotator::new(SimDuration::from_secs(period_secs));
        let batch = rotator.partition(&trace, &mut StdRng::seed_from_u64(seed));
        let mut stage = rotator.stage_with_rng(StdRng::seed_from_u64(seed));
        let staged = drive(&mut stage, &trace);
        prop_assert_eq!(stage.flow_count(), batch.len());
        // Same pseudonyms drawn in the same order, same packets per sub-flow.
        let mut flows: Vec<Vec<PacketRecord>> = vec![Vec::new(); stage.flow_count()];
        for (flow, packet) in staged {
            flows[flow as usize].push(packet);
        }
        for (flow, (mac, part)) in batch.iter().enumerate() {
            prop_assert_eq!(stage.pseudonym_of(flow as FlowId), Some(*mac));
            prop_assert_eq!(flows[flow].as_slice(), part.packets());
        }
    }

    #[test]
    fn streaming_frequency_hopping_equals_batch_partitions(
        seed in 0u64..100,
        app_index in 0usize..7,
    ) {
        let trace = trace_of(app_index, seed, 20.0);
        let hopper = FrequencyHopper::default();
        let batch = hopper.partition(&trace);
        let mut stage = hopper.stage();
        let staged = drive(&mut stage, &trace);
        let mut per_channel: Vec<Vec<PacketRecord>> = vec![Vec::new(); hopper.channels().len()];
        for (flow, packet) in staged {
            let idx = stage.channel_index_of(flow).expect("allocated flow");
            per_channel[idx].push(packet);
        }
        for (idx, (channel, part)) in batch.iter().enumerate() {
            prop_assert_eq!(*channel, hopper.channels()[idx]);
            prop_assert_eq!(per_channel[idx].as_slice(), part.packets());
        }
    }

    #[test]
    fn pipeline_of_one_stage_equals_the_stage_directly(seed in 0u64..100, app_index in 0usize..7) {
        // Compose-associativity smoke test at the property level: lifting a
        // stage into a pipeline changes nothing about its output or ledger.
        let trace = trace_of(app_index, seed, 20.0);
        let direct = drive(&mut PacketPadder::new().stage(), &trace);
        let mut pipeline = StagePipeline::new().with_stage(PacketPadder::new().stage());
        let mut piped = Vec::new();
        pipeline.run(&mut trace.stream(), |flow, p| piped.push((flow, *p)));
        prop_assert_eq!(direct, piped);
        prop_assert_eq!(pipeline.overhead(), pipeline.stages()[0].overhead());
    }
}
