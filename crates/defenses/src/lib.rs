//! # defenses
//!
//! Baseline defenses against traffic analysis, reimplemented so the
//! traffic-reshaping reproduction can compare against them exactly as the
//! paper does (§II-B, §IV-D):
//!
//! * [`padding`] — pad every packet to a fixed size (the paper pads to the
//!   maximum observed size, 1576 bytes).
//! * [`morphing`] — traffic morphing à la Wright et al. (NDSS'09): rewrite the
//!   packet-size distribution of one application to look like another's,
//!   without ever shrinking a packet below its original payload.
//! * [`pseudonym`] — periodically rotate the client's MAC address
//!   (Gruteser/Grunwald, Jiang et al.); partitions traffic at a coarse
//!   granularity without changing per-partition features.
//! * [`frequency_hopping`] — hop between channels 1/6/11 with a fixed dwell
//!   (the VirtualWiFi-based baseline of §IV); an eavesdropper camped on one
//!   channel sees only that channel's partition.
//! * [`overhead`] — the byte-overhead accounting shared by every defense.
//!
//! All defenses operate on [`traffic_gen::Trace`] values so they compose with
//! the same classifier pipeline as traffic reshaping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frequency_hopping;
pub mod morphing;
pub mod overhead;
pub mod padding;
pub mod pseudonym;

pub use frequency_hopping::FrequencyHopper;
pub use morphing::TrafficMorpher;
pub use overhead::Overhead;
pub use padding::PacketPadder;
pub use pseudonym::PseudonymRotator;
