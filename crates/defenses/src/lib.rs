//! # defenses
//!
//! Baseline defenses against traffic analysis, reimplemented so the
//! traffic-reshaping reproduction can compare against them exactly as the
//! paper does (§II-B, §IV-D):
//!
//! * [`padding`] — pad every packet to a fixed size (the paper pads to the
//!   maximum observed size, 1576 bytes).
//! * [`morphing`] — traffic morphing à la Wright et al. (NDSS'09): rewrite the
//!   packet-size distribution of one application to look like another's,
//!   without ever shrinking a packet below its original payload.
//! * [`pseudonym`] — periodically rotate the client's MAC address
//!   (Gruteser/Grunwald, Jiang et al.); partitions traffic at a coarse
//!   granularity without changing per-partition features.
//! * [`frequency_hopping`] — hop between channels 1/6/11 with a fixed dwell
//!   (the VirtualWiFi-based baseline of §IV); an eavesdropper camped on one
//!   channel sees only that channel's partition.
//! * [`stage`] — the composable streaming pipeline every defense plugs into:
//!   the per-packet [`PacketStage`] trait and the [`StagePipeline`] that
//!   chains stages (defense∘defense, defense∘reshaping, …).
//! * [`overhead`] — the byte/packet-overhead ledger shared by every stage.
//!
//! Every defense is implemented as a streaming [`PacketStage`] (packet in,
//! zero or more packets out) so it runs on unbounded sessions and composes
//! with the reshaping engine; the batch entry points (`apply` / `partition`)
//! are thin wrappers that drive a stage over a materialised
//! [`traffic_gen::Trace`], property-tested byte-identical per seed in
//! `tests/stage_equivalence.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frequency_hopping;
pub mod morphing;
pub mod overhead;
pub mod padding;
pub mod pseudonym;
pub mod spec;
pub mod stage;

pub use frequency_hopping::{FrequencyHopper, FrequencyHoppingStage};
pub use morphing::{MorphingStage, TrafficMorpher};
pub use overhead::Overhead;
pub use padding::{PacketPadder, PaddingStage};
pub use pseudonym::{PseudonymRotator, PseudonymStage};
pub use spec::{DefenseStageSpec, StageContext};
pub use stage::{FlowId, FlowMap, FlowTraces, PacketStage, StagePipeline, ROOT_FLOW};
