//! The composable streaming defense pipeline: [`PacketStage`] and
//! [`StagePipeline`].
//!
//! Every defense in this crate — and the reshaping engine in `reshape-core` —
//! implements one per-packet contract: a **stage** consumes one packet from an
//! upstream sub-flow and emits zero or more packets onto downstream sub-flows,
//! plus a [`flush`](PacketStage::flush) at session end for stages that buffer.
//! Stages therefore run on unbounded sessions without materialising traffic:
//! a transforming stage keeps O(1) state, while a partitioning stage keeps a
//! few dozen bytes per sub-flow it has opened (pseudonym rotation, which
//! opens one sub-flow per period, grows by one `FlowMap` entry and one MAC
//! per rotation — linear in session length but with a tiny constant). Stages
//! compose:
//! a [`StagePipeline`] chains any number of stages into one stage, so
//! morph-then-reshape, reshape-then-pad or any other defense∘defense ordering
//! is a first-class data path rather than a bespoke batch rewrite.
//!
//! Sub-flows are identified by dense [`FlowId`]s. A transforming stage
//! (padding, morphing) preserves the incoming flow id; a partitioning stage
//! (frequency hopping, pseudonyms, reshaping) allocates fresh output ids via
//! [`FlowMap`], one per `(incoming flow, local partition)` pair, so the flow
//! space stays dense through arbitrary compositions. The input stream itself
//! is the single flow [`ROOT_FLOW`].
//!
//! Overhead accounting lives in the trait: every stage reports the bytes and
//! packets it absorbed and emitted through the shared
//! [`Overhead`] ledger, and a pipeline reports its end-to-end ledger, so every
//! defense and every composition is costed the same way (Table VI's metric).

use crate::overhead::Overhead;
use std::collections::HashMap;
use traffic_gen::app::AppKind;
use traffic_gen::packet::PacketRecord;
use traffic_gen::stream::PacketSource;
use traffic_gen::trace::Trace;

/// Identifies one sub-flow in a stage pipeline (dense, starting at 0).
pub type FlowId = u32;

/// The flow id of the undivided input stream entering a pipeline.
pub const ROOT_FLOW: FlowId = 0;

/// The buffer a stage emits `(flow, packet)` pairs into.
pub type StageOutput = Vec<(FlowId, PacketRecord)>;

/// Packets per micro-batch on the batched fast path ([`StagePipeline::run`]
/// and [`PacketStage::process_slice`]). Small enough that a batch of
/// `(FlowId, PacketRecord)` pairs stays in L1, large enough to amortise the
/// per-batch virtual dispatch and buffer bookkeeping to noise.
pub const STAGE_BATCH: usize = 128;

/// A per-packet defense stage: packet in, zero or more packets out.
///
/// Implementations must emit packets in non-decreasing timestamp order (the
/// order every [`PacketSource`] guarantees) so downstream stages and windowers
/// can stay streaming.
pub trait PacketStage: std::fmt::Debug + Send {
    /// A short name used in logs and experiment tables.
    fn name(&self) -> &'static str;

    /// Consumes one packet arriving on sub-flow `flow`, pushing the
    /// transformed packet(s) and their output sub-flows into `out`.
    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput);

    /// Streams a micro-batch through the stage — the batched fast path.
    ///
    /// **Must** be byte-identical to calling [`on_packet`](Self::on_packet)
    /// once per element in order (property-tested for every registered
    /// defense in the bench crate's `slice_equivalence` suite); the default
    /// does exactly that. The win is mechanical: one virtual dispatch per
    /// batch instead of per packet, with the monomorphised per-packet kernel
    /// inlined into the loop, so stage state stays in registers across the
    /// whole slice. Override only to exploit batch structure further.
    fn process_slice(&mut self, batch: &[(FlowId, PacketRecord)], out: &mut StageOutput) {
        for (flow, packet) in batch {
            self.on_packet(*flow, packet, out);
        }
    }

    /// Signals end of session: stages that buffer packets emit the remainder.
    /// The default is a no-op (none of the paper's defenses buffer).
    fn flush(&mut self, _out: &mut StageOutput) {}

    /// The bytes/packets absorbed and emitted by this stage so far — the
    /// shared overhead ledger of Table VI.
    fn overhead(&self) -> Overhead;

    /// Resets per-session state (flow allocations, counters, ledgers) so the
    /// stage can be reused on a fresh stream.
    fn reset(&mut self);
}

/// Allocates dense output [`FlowId`]s for `(incoming flow, local key)` pairs.
///
/// The helper every partitioning stage uses: the first packet of a new
/// partition allocates the next id (so ids are assigned in first-appearance
/// order, which is what makes streaming and batch partitioning byte-identical
/// per seed), later packets reuse it.
#[derive(Debug, Clone, Default)]
pub struct FlowMap<K: Eq + std::hash::Hash> {
    ids: HashMap<(FlowId, K), FlowId>,
    next: FlowId,
}

impl<K: Eq + std::hash::Hash> FlowMap<K> {
    /// Creates an empty map.
    pub fn new() -> Self {
        FlowMap {
            ids: HashMap::new(),
            next: 0,
        }
    }

    /// Returns the output flow for `(flow, key)`, allocating the next dense id
    /// on first sight. The boolean is `true` exactly when the id is new.
    pub fn id_of(&mut self, flow: FlowId, key: K) -> (FlowId, bool) {
        match self.ids.entry((flow, key)) {
            std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.next;
                self.next += 1;
                e.insert(id);
                (id, true)
            }
        }
    }

    /// Number of output flows allocated so far.
    pub fn len(&self) -> usize {
        self.next as usize
    }

    /// Returns `true` when no flow has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// Forgets all allocations.
    pub fn reset(&mut self) {
        self.ids.clear();
        self.next = 0;
    }
}

/// A chain of stages driven packet by packet — itself a [`PacketStage`], so
/// pipelines nest and compose associatively.
///
/// An empty pipeline is the identity stage: packets pass through unchanged on
/// [`ROOT_FLOW`]. The pipeline keeps its own end-to-end [`Overhead`] ledger
/// (input bytes/packets vs. what the final stage emitted), independent of the
/// per-stage ledgers.
#[derive(Debug, Default)]
pub struct StagePipeline {
    stages: Vec<Box<dyn PacketStage>>,
    ledger: Overhead,
    /// Scratch buffers ping-ponged between stages (reused across packets so
    /// the steady-state hot path allocates nothing).
    buf_a: StageOutput,
    buf_b: StageOutput,
}

impl StagePipeline {
    /// Creates an empty (identity) pipeline.
    pub fn new() -> Self {
        StagePipeline::default()
    }

    /// Appends a stage (builder style): packets flow through stages in the
    /// order they were added.
    pub fn with_stage(mut self, stage: impl PacketStage + 'static) -> Self {
        self.push_stage(Box::new(stage));
        self
    }

    /// Appends a boxed stage.
    pub fn push_stage(&mut self, stage: Box<dyn PacketStage>) {
        self.stages.push(stage);
    }

    /// The stages, in flow order.
    pub fn stages(&self) -> &[Box<dyn PacketStage>] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` for the identity pipeline.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Seeds the ping-pong scratch with recycled buffers, keeping their
    /// capacity so a freshly built pipeline skips the first batches' growth.
    /// A no-op for buffers that already have capacity.
    pub fn adopt_scratch(&mut self, a: StageOutput, b: StageOutput) {
        if self.buf_a.capacity() < a.capacity() {
            self.buf_a = a;
            self.buf_a.clear();
        }
        if self.buf_b.capacity() < b.capacity() {
            self.buf_b = b;
            self.buf_b.clear();
        }
    }

    /// Hands the ping-pong scratch back for recycling (the pipeline keeps
    /// working afterwards, it just re-grows fresh buffers on demand).
    pub fn release_scratch(&mut self) -> (StageOutput, StageOutput) {
        (
            std::mem::take(&mut self.buf_a),
            std::mem::take(&mut self.buf_b),
        )
    }

    /// Feeds one packet through every stage, handing each final
    /// `(flow, packet)` pair to `sink` in emission order.
    pub fn process<F: FnMut(FlowId, &PacketRecord)>(&mut self, packet: &PacketRecord, sink: F) {
        self.ledger.absorb(packet.size as u64);
        self.buf_a.clear();
        self.buf_a.push((ROOT_FLOW, *packet));
        self.propagate(0, sink);
    }

    /// Feeds a micro-batch of root-flow packets through every stage — the
    /// batched fast path, byte-identical to calling
    /// [`process`](Self::process) once per packet in order (each stage is
    /// causal, so emissions for packet *i* precede packet *i + 1*'s at every
    /// hop). Emission order and the ledger are exactly those of the
    /// per-packet path; only the number of virtual dispatches changes.
    pub fn process_batch<F: FnMut(FlowId, &PacketRecord)>(
        &mut self,
        packets: &[PacketRecord],
        sink: F,
    ) {
        self.buf_a.clear();
        self.buf_a.reserve(packets.len());
        for packet in packets {
            self.ledger.absorb(packet.size as u64);
            self.buf_a.push((ROOT_FLOW, *packet));
        }
        self.propagate(0, sink);
    }

    /// Signals end of session: flushes every stage in order, cascading each
    /// stage's buffered packets through the stages after it.
    pub fn finish<F: FnMut(FlowId, &PacketRecord)>(&mut self, mut sink: F) {
        for i in 0..self.stages.len() {
            self.buf_a.clear();
            self.stages[i].flush(&mut self.buf_a);
            if !self.buf_a.is_empty() {
                self.propagate(i + 1, &mut sink);
            }
        }
    }

    /// Drains a whole packet source through the pipeline in
    /// [`STAGE_BATCH`]-sized micro-batches (byte-identical to the per-packet
    /// path — see [`process_batch`](Self::process_batch)), flushing at the
    /// end; returns the number of packets consumed from the source.
    pub fn run<P, F>(&mut self, source: &mut P, mut sink: F) -> usize
    where
        P: PacketSource + ?Sized,
        F: FnMut(FlowId, &PacketRecord),
    {
        let mut batch: Vec<PacketRecord> = Vec::with_capacity(STAGE_BATCH);
        let mut consumed = 0;
        loop {
            batch.clear();
            while batch.len() < STAGE_BATCH {
                match source.next_packet() {
                    Some(packet) => batch.push(packet),
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            consumed += batch.len();
            self.process_batch(&batch, &mut sink);
            if batch.len() < STAGE_BATCH {
                break;
            }
        }
        self.finish(&mut sink);
        consumed
    }

    /// The end-to-end ledger: everything that entered the pipeline vs.
    /// everything the final stage emitted.
    pub fn overhead(&self) -> Overhead {
        self.ledger
    }

    /// Resets every stage and the pipeline ledger for a fresh stream.
    pub fn reset(&mut self) {
        for stage in &mut self.stages {
            stage.reset();
        }
        self.ledger = Overhead::default();
    }

    /// Runs whatever sits in `buf_a` through stages `start..`, emitting the
    /// survivors to `sink` (and recording them in the pipeline ledger).
    fn propagate<F: FnMut(FlowId, &PacketRecord)>(&mut self, start: usize, mut sink: F) {
        for stage in self.stages[start..].iter_mut() {
            if self.buf_a.is_empty() {
                return;
            }
            self.buf_b.clear();
            stage.process_slice(&self.buf_a, &mut self.buf_b);
            self.buf_a.clear();
            std::mem::swap(&mut self.buf_a, &mut self.buf_b);
        }
        for (flow, packet) in self.buf_a.drain(..) {
            self.ledger.emit(packet.size as u64);
            sink(flow, &packet);
        }
    }
}

impl PacketStage for StagePipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        // Like `process`, but entering on the caller's flow id instead of
        // ROOT_FLOW (a nested pipeline must preserve upstream sub-flows).
        self.ledger.absorb(packet.size as u64);
        self.buf_a.clear();
        self.buf_a.push((flow, *packet));
        self.propagate(0, |f, p| out.push((f, *p)));
    }

    fn process_slice(&mut self, batch: &[(FlowId, PacketRecord)], out: &mut StageOutput) {
        // Nested pipelines stream the whole slice through each inner stage in
        // turn instead of re-entering `on_packet` per element.
        for (_, packet) in batch {
            self.ledger.absorb(packet.size as u64);
        }
        self.buf_a.clear();
        self.buf_a.extend_from_slice(batch);
        self.propagate(0, |f, p| out.push((f, *p)));
    }

    fn flush(&mut self, out: &mut StageOutput) {
        self.finish(|f, p| out.push((f, *p)));
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    fn reset(&mut self) {
        StagePipeline::reset(self);
    }
}

/// Collects the output of a stage pipeline into one labelled [`Trace`] per
/// sub-flow — the batch view of a staged stream, used by the batch wrappers
/// and the equivalence tests.
#[derive(Debug, Clone, Default)]
pub struct FlowTraces {
    app: Option<AppKind>,
    traces: Vec<Trace>,
}

impl FlowTraces {
    /// Creates a collector whose traces carry the ground-truth `app` label.
    pub fn new(app: Option<AppKind>) -> Self {
        FlowTraces {
            app,
            traces: Vec::new(),
        }
    }

    /// Accepts one staged packet (grows the flow table on demand).
    pub fn accept(&mut self, flow: FlowId, packet: &PacketRecord) {
        let idx = flow as usize;
        while self.traces.len() <= idx {
            let mut t = Trace::new();
            t.set_app(self.app);
            self.traces.push(t);
        }
        self.traces[idx].push(*packet);
    }

    /// Total packets collected across all flows.
    pub fn len(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Returns `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the collection: one trace per sub-flow, indexed by flow id.
    pub fn into_traces(self) -> Vec<Trace> {
        self.traces
    }
}

/// Drives a whole trace through one stage (including the final flush) and
/// returns every emitted `(flow, packet)` pair in order — the workhorse of
/// the batch wrappers.
pub fn stage_trace(stage: &mut dyn PacketStage, trace: &Trace) -> Vec<(FlowId, PacketRecord)> {
    let mut out = StageOutput::with_capacity(trace.len());
    for packet in trace.packets() {
        stage.on_packet(ROOT_FLOW, packet, &mut out);
    }
    stage.flush(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::padding::PaddingStage;
    use crate::PacketPadder;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::MAX_PACKET_SIZE;

    fn trace() -> Trace {
        SessionGenerator::new(AppKind::Chatting, 1).generate_secs(20.0)
    }

    #[test]
    fn empty_pipeline_is_the_identity() {
        let trace = trace();
        let mut pipeline = StagePipeline::new();
        assert!(pipeline.is_empty());
        let mut collected = FlowTraces::new(trace.app());
        let consumed = pipeline.run(&mut trace.stream(), |flow, p| {
            assert_eq!(flow, ROOT_FLOW);
            collected.accept(flow, p);
        });
        assert_eq!(consumed, trace.len());
        let flows = collected.into_traces();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].packets(), trace.packets());
        let overhead = pipeline.overhead();
        assert_eq!(overhead.percent(), 0.0);
        assert_eq!(overhead.original_packets, trace.len() as u64);
        assert_eq!(overhead.transformed_packets, trace.len() as u64);
    }

    #[test]
    fn pipeline_of_one_stage_equals_the_stage_directly() {
        // The compose-associativity smoke test: wrapping a stage in a
        // pipeline must not change a single byte of its output.
        let trace = trace();
        let direct = stage_trace(&mut PaddingStage::new(PacketPadder::new()), &trace);
        let mut pipeline = StagePipeline::new().with_stage(PaddingStage::new(PacketPadder::new()));
        let mut staged = Vec::new();
        pipeline.run(&mut trace.stream(), |flow, p| staged.push((flow, *p)));
        assert_eq!(direct, staged);
        // The pipeline ledger matches the stage's own ledger for 1:1 stages.
        assert_eq!(pipeline.overhead(), pipeline.stages()[0].overhead());
    }

    #[test]
    fn nested_pipelines_compose_associatively() {
        // (pad . pad-to-400) as one flat pipeline == inner pipeline nested as
        // a stage of an outer one.
        let trace = trace();
        let mut flat = StagePipeline::new()
            .with_stage(PaddingStage::new(PacketPadder::to_size(400)))
            .with_stage(PaddingStage::new(PacketPadder::new()));
        let inner = StagePipeline::new().with_stage(PaddingStage::new(PacketPadder::to_size(400)));
        let mut nested = StagePipeline::new()
            .with_stage(inner)
            .with_stage(PaddingStage::new(PacketPadder::new()));
        let mut flat_out = Vec::new();
        flat.run(&mut trace.stream(), |f, p| flat_out.push((f, *p)));
        let mut nested_out = Vec::new();
        nested.run(&mut trace.stream(), |f, p| nested_out.push((f, *p)));
        assert_eq!(flat_out, nested_out);
        assert!(flat_out.iter().all(|(_, p)| p.size == MAX_PACKET_SIZE));
        assert_eq!(flat.overhead(), nested.overhead());
    }

    #[test]
    fn reset_clears_state_and_replays_identically() {
        let trace = trace();
        let mut pipeline = StagePipeline::new().with_stage(PaddingStage::new(PacketPadder::new()));
        let mut first = Vec::new();
        pipeline.run(&mut trace.stream(), |f, p| first.push((f, *p)));
        pipeline.reset();
        assert_eq!(pipeline.overhead(), Overhead::default());
        let mut second = Vec::new();
        pipeline.run(&mut trace.stream(), |f, p| second.push((f, *p)));
        assert_eq!(first, second);
    }

    #[test]
    fn flow_map_allocates_dense_ids_in_first_seen_order() {
        let mut map: FlowMap<usize> = FlowMap::new();
        assert!(map.is_empty());
        assert_eq!(map.id_of(0, 7), (0, true));
        assert_eq!(map.id_of(0, 3), (1, true));
        assert_eq!(map.id_of(0, 7), (0, false));
        assert_eq!(map.id_of(1, 7), (2, true), "keyed per incoming flow");
        assert_eq!(map.len(), 3);
        map.reset();
        assert_eq!(map.id_of(0, 3), (0, true));
    }

    #[test]
    fn flow_traces_groups_by_flow_id() {
        let mut collected = FlowTraces::new(Some(AppKind::Video));
        let p = |secs: f64| {
            PacketRecord::at_secs(
                secs,
                100,
                traffic_gen::packet::Direction::Downlink,
                AppKind::Video,
            )
        };
        collected.accept(1, &p(0.0));
        collected.accept(0, &p(1.0));
        collected.accept(1, &p(2.0));
        assert_eq!(collected.len(), 3);
        let traces = collected.into_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].len(), 1);
        assert_eq!(traces[1].len(), 2);
        assert!(traces.iter().all(|t| t.app() == Some(AppKind::Video)));
    }
}
