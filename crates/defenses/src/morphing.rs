//! Traffic morphing.
//!
//! Wright, Coull and Monrose (NDSS'09) propose rewriting the packet-size
//! distribution of one application so that it matches the distribution of a
//! *target* application, paying far less overhead than blanket padding. This
//! module implements a CDF-matching variant of the idea:
//!
//! * the empirical size CDF of the source and target applications are
//!   computed,
//! * each packet's size is mapped to the target size at the same quantile,
//! * because link-layer morphing cannot drop payload bytes, a packet is never
//!   shrunk below its original size (those bytes would have to be split into
//!   extra packets, which the paper also avoids in its comparison).
//!
//! The paper pairs applications in a cycle (§IV-D): chatting→gaming,
//! gaming→browsing, browsing→BitTorrent, BitTorrent→video, video→downloading;
//! downloading and uploading are left as-is (they are already at the extremes
//! of the size spectrum).

use crate::overhead::Overhead;
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::distribution::SizeHistogram;
use traffic_gen::trace::Trace;
use traffic_gen::MAX_PACKET_SIZE;

/// Bin width used for the morphing CDFs.
const MORPH_BIN_WIDTH: usize = 8;

/// The application pairing used by the paper when morphing each class
/// (`source → target`). Applications not present map to themselves.
pub fn paper_morphing_target(source: AppKind) -> AppKind {
    match source {
        AppKind::Chatting => AppKind::Gaming,
        AppKind::Gaming => AppKind::Browsing,
        AppKind::Browsing => AppKind::BitTorrent,
        AppKind::BitTorrent => AppKind::Video,
        AppKind::Video => AppKind::Downloading,
        // Downloading / uploading keep their own shape in the paper's setup.
        other => other,
    }
}

/// Morphs packet sizes of a source trace toward a target application's
/// empirical size distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMorpher {
    target_app: AppKind,
    target_cdf: Vec<f64>,
    bin_width: usize,
}

impl TrafficMorpher {
    /// Builds a morpher whose target distribution is estimated from a trace of
    /// the target application.
    ///
    /// # Panics
    ///
    /// Panics if the target trace is empty.
    pub fn from_target_trace(target_app: AppKind, target_trace: &Trace) -> Self {
        assert!(
            !target_trace.is_empty(),
            "cannot build a morphing target from an empty trace"
        );
        let hist = SizeHistogram::from_sizes(
            target_trace.packets().iter().map(|p| p.size),
            MAX_PACKET_SIZE,
            MORPH_BIN_WIDTH,
        );
        TrafficMorpher {
            target_app,
            target_cdf: hist.cdf(),
            bin_width: MORPH_BIN_WIDTH,
        }
    }

    /// The application whose distribution is being imitated.
    pub fn target_app(&self) -> AppKind {
        self.target_app
    }

    /// Maps a quantile in `[0, 1]` to a size drawn from the target CDF.
    fn target_size_at_quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        for (i, c) in self.target_cdf.iter().enumerate() {
            if *c >= q {
                return ((i * self.bin_width) + self.bin_width / 2).min(MAX_PACKET_SIZE);
            }
        }
        MAX_PACKET_SIZE
    }

    /// Morphs a source trace: every packet's size is replaced by the target
    /// size at the same quantile of the *source* distribution, but never made
    /// smaller than the original packet. Returns the morphed trace and the
    /// byte overhead.
    pub fn apply(&self, source: &Trace) -> (Trace, Overhead) {
        if source.is_empty() {
            return (source.clone(), Overhead::default());
        }
        let source_hist = SizeHistogram::from_sizes(
            source.packets().iter().map(|p| p.size),
            MAX_PACKET_SIZE,
            self.bin_width,
        );
        let source_cdf = source_hist.cdf();
        let packets = source
            .packets()
            .iter()
            .map(|p| {
                let bin = p.size.min(MAX_PACKET_SIZE) / self.bin_width;
                let q = source_cdf[bin.min(source_cdf.len() - 1)];
                let morphed = self.target_size_at_quantile(q);
                // Never shrink: link-layer morphing cannot delete payload bytes.
                p.with_size(morphed.max(p.size))
            })
            .collect();
        let morphed = Trace::from_packets(source.app(), packets);
        let overhead = Overhead::between(source, &morphed);
        (morphed, overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::Direction;

    fn trace_of(app: AppKind, seed: u64, secs: f64) -> Trace {
        SessionGenerator::new(app, seed).generate_secs(secs)
    }

    #[test]
    fn paper_pairing_is_a_partial_cycle() {
        assert_eq!(paper_morphing_target(AppKind::Chatting), AppKind::Gaming);
        assert_eq!(paper_morphing_target(AppKind::Gaming), AppKind::Browsing);
        assert_eq!(
            paper_morphing_target(AppKind::Browsing),
            AppKind::BitTorrent
        );
        assert_eq!(paper_morphing_target(AppKind::BitTorrent), AppKind::Video);
        assert_eq!(paper_morphing_target(AppKind::Video), AppKind::Downloading);
        assert_eq!(
            paper_morphing_target(AppKind::Downloading),
            AppKind::Downloading
        );
        assert_eq!(
            paper_morphing_target(AppKind::Uploading),
            AppKind::Uploading
        );
    }

    #[test]
    fn morphing_moves_the_mean_toward_the_target() {
        let chat = trace_of(AppKind::Chatting, 1, 120.0);
        let gaming = trace_of(AppKind::Gaming, 2, 120.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        assert_eq!(morpher.target_app(), AppKind::Gaming);
        let (morphed, overhead) = morpher.apply(&chat);
        assert_eq!(morphed.len(), chat.len());
        let before = chat.mean_packet_size();
        let after = morphed.mean_packet_size();
        let target = gaming.mean_packet_size();
        assert!(
            (after - target).abs() < (before - target).abs(),
            "morphing should move the mean toward the target: before {before:.0}, after {after:.0}, target {target:.0}"
        );
        assert!(overhead.percent() > 0.0);
    }

    #[test]
    fn packets_are_never_shrunk() {
        let video = trace_of(AppKind::Video, 3, 30.0);
        let chat = trace_of(AppKind::Chatting, 4, 120.0);
        // Morphing large-packet video toward small-packet chat must not shrink anything.
        let morpher = TrafficMorpher::from_target_trace(AppKind::Chatting, &chat);
        let (morphed, overhead) = morpher.apply(&video);
        for (orig, new) in video.packets().iter().zip(morphed.packets()) {
            assert!(new.size >= orig.size);
            assert!(new.size <= MAX_PACKET_SIZE);
        }
        // Nothing to grow either: overhead is tiny.
        assert!(overhead.percent() < 5.0);
    }

    #[test]
    fn timing_is_unchanged() {
        let chat = trace_of(AppKind::Chatting, 5, 60.0);
        let gaming = trace_of(AppKind::Gaming, 6, 60.0);
        let (morphed, _) = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming).apply(&chat);
        for (a, b) in chat.packets().iter().zip(morphed.packets()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
        }
        assert_eq!(
            chat.mean_interarrival_secs(Direction::Downlink),
            morphed.mean_interarrival_secs(Direction::Downlink)
        );
    }

    #[test]
    fn morphing_is_cheaper_than_padding() {
        // Table VI: morphing overhead (39 %) is far below padding (121 %).
        let mut morph_total = 0.0;
        let mut pad_total = 0.0;
        for (i, app) in AppKind::ALL.iter().enumerate() {
            let source = trace_of(*app, 10 + i as u64, 60.0);
            let target_app = paper_morphing_target(*app);
            let target = trace_of(target_app, 100 + i as u64, 60.0);
            let (_, morph) = TrafficMorpher::from_target_trace(target_app, &target).apply(&source);
            let (_, pad) = crate::padding::PacketPadder::new().apply(&source);
            morph_total += morph.percent();
            pad_total += pad.percent();
        }
        assert!(
            morph_total < pad_total,
            "morphing ({morph_total:.1}) must be cheaper than padding ({pad_total:.1})"
        );
    }

    #[test]
    fn empty_source_is_a_no_op() {
        let gaming = trace_of(AppKind::Gaming, 9, 30.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        let (out, overhead) = morpher.apply(&Trace::new());
        assert!(out.is_empty());
        assert_eq!(overhead.percent(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_target_trace_panics() {
        let _ = TrafficMorpher::from_target_trace(AppKind::Gaming, &Trace::new());
    }
}
