//! Traffic morphing.
//!
//! Wright, Coull and Monrose (NDSS'09) propose rewriting the packet-size
//! distribution of one application so that it matches the distribution of a
//! *target* application, paying far less overhead than blanket padding. This
//! module implements a CDF-matching variant of the idea:
//!
//! * the empirical size CDF of the source and target applications are
//!   computed,
//! * each packet's size is mapped to the target size at the same quantile,
//! * because link-layer morphing cannot drop payload bytes, a packet is never
//!   shrunk below its original size (those bytes would have to be split into
//!   extra packets, which the paper also avoids in its comparison).
//!
//! Like the original morphing matrix, both CDFs are fixed **before** traffic
//! flows: [`MorphingStage`] then morphs each packet independently as it
//! streams by (a one-in/one-out [`PacketStage`]), so morphing runs on
//! unbounded sessions and composes with reshaping. The batch
//! [`TrafficMorpher::apply`] estimates the source CDF from the given trace and
//! drives a stage over it — a thin wrapper, byte-identical per seed
//! (property-tested in `tests/stage_equivalence.rs`).
//!
//! The paper pairs applications in a cycle (§IV-D): chatting→gaming,
//! gaming→browsing, browsing→BitTorrent, BitTorrent→video, video→downloading;
//! downloading and uploading are left as-is (they are already at the extremes
//! of the size spectrum).

use crate::overhead::Overhead;
use crate::stage::{stage_trace, FlowId, PacketStage, StageOutput};
use serde::{Deserialize, Serialize};
use traffic_gen::app::AppKind;
use traffic_gen::distribution::SizeHistogram;
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use traffic_gen::MAX_PACKET_SIZE;

/// Bin width used for the morphing CDFs.
const MORPH_BIN_WIDTH: usize = 8;

/// The application pairing used by the paper when morphing each class
/// (`source → target`). Applications not present map to themselves.
pub fn paper_morphing_target(source: AppKind) -> AppKind {
    match source {
        AppKind::Chatting => AppKind::Gaming,
        AppKind::Gaming => AppKind::Browsing,
        AppKind::Browsing => AppKind::BitTorrent,
        AppKind::BitTorrent => AppKind::Video,
        AppKind::Video => AppKind::Downloading,
        // Downloading / uploading keep their own shape in the paper's setup.
        other => other,
    }
}

/// Morphs packet sizes of a source trace toward a target application's
/// empirical size distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMorpher {
    target_app: AppKind,
    target_cdf: Vec<f64>,
    bin_width: usize,
}

impl TrafficMorpher {
    /// Builds a morpher whose target distribution is estimated from a trace of
    /// the target application.
    ///
    /// # Panics
    ///
    /// Panics if the target trace is empty.
    pub fn from_target_trace(target_app: AppKind, target_trace: &Trace) -> Self {
        assert!(
            !target_trace.is_empty(),
            "cannot build a morphing target from an empty trace"
        );
        let hist = SizeHistogram::from_sizes(
            target_trace.packets().iter().map(|p| p.size),
            MAX_PACKET_SIZE,
            MORPH_BIN_WIDTH,
        );
        TrafficMorpher {
            target_app,
            target_cdf: hist.cdf(),
            bin_width: MORPH_BIN_WIDTH,
        }
    }

    /// The application whose distribution is being imitated.
    pub fn target_app(&self) -> AppKind {
        self.target_app
    }

    /// Maps a quantile in `[0, 1]` to a size drawn from the target CDF (the
    /// first bin whose cumulative mass reaches `q`).
    fn target_size_at_quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        let i = self.target_cdf.partition_point(|c| *c < q);
        if i == self.target_cdf.len() {
            return MAX_PACKET_SIZE;
        }
        ((i * self.bin_width) + self.bin_width / 2).min(MAX_PACKET_SIZE)
    }

    /// The streaming morphing stage, with the source size distribution
    /// estimated from `source_trace` (e.g. a recorded calibration session of
    /// the application being disguised).
    ///
    /// # Panics
    ///
    /// Panics if the source trace is empty.
    pub fn stage_for_source_trace(&self, source_trace: &Trace) -> MorphingStage {
        assert!(
            !source_trace.is_empty(),
            "cannot estimate a source CDF from an empty trace"
        );
        let hist = SizeHistogram::from_sizes(
            source_trace.packets().iter().map(|p| p.size),
            MAX_PACKET_SIZE,
            self.bin_width,
        );
        MorphingStage::new(self.clone(), hist.cdf())
    }

    /// Morphs a source trace: every packet's size is replaced by the target
    /// size at the same quantile of the *source* distribution, but never made
    /// smaller than the original packet. Returns the morphed trace and the
    /// byte overhead.
    ///
    /// This is the thin batch wrapper over [`MorphingStage`]: the source CDF
    /// is estimated from `source` itself, then the packets stream through the
    /// stage one at a time.
    pub fn apply(&self, source: &Trace) -> (Trace, Overhead) {
        if source.is_empty() {
            return (source.clone(), Overhead::default());
        }
        let mut stage = self.stage_for_source_trace(source);
        let packets = stage_trace(&mut stage, source)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        (Trace::from_packets(source.app(), packets), stage.overhead())
    }
}

/// The streaming morphing defense: maps each packet's size to the target
/// distribution's size at the same quantile of the (pre-estimated) source
/// distribution, never shrinking a packet.
#[derive(Debug, Clone, PartialEq)]
pub struct MorphingStage {
    morpher: TrafficMorpher,
    source_cdf: Vec<f64>,
    /// Source bin → morphed size, precomputed at construction so the
    /// per-packet kernel is one bounded table load instead of a CDF walk.
    bin_to_target: Vec<usize>,
    ledger: Overhead,
}

impl MorphingStage {
    /// Creates a stage from a morpher (target CDF) and a pre-computed source
    /// CDF over the morpher's bin width (as returned by
    /// [`SizeHistogram::cdf`]).
    ///
    /// # Panics
    ///
    /// Panics if the source CDF is empty.
    pub fn new(morpher: TrafficMorpher, source_cdf: Vec<f64>) -> Self {
        assert!(!source_cdf.is_empty(), "source CDF must not be empty");
        // Both CDFs are fixed before traffic flows, so the whole
        // quantile-matching composition collapses into one lookup table.
        let bin_to_target = source_cdf
            .iter()
            .map(|&q| morpher.target_size_at_quantile(q))
            .collect();
        MorphingStage {
            morpher,
            source_cdf,
            bin_to_target,
            ledger: Overhead::default(),
        }
    }

    /// The application whose distribution is being imitated.
    pub fn target_app(&self) -> AppKind {
        self.morpher.target_app()
    }

    /// Morphs one size (the per-packet kernel shared with the batch path).
    fn morph_size(&self, size: usize) -> usize {
        debug_assert!(
            size <= MAX_PACKET_SIZE,
            "packet size {size} exceeds MAX_PACKET_SIZE ({MAX_PACKET_SIZE}); \
             upstream stages must emit link-layer-sized packets"
        );
        let bin = size.min(MAX_PACKET_SIZE) / self.morpher.bin_width;
        // Never shrink: link-layer morphing cannot delete payload bytes.
        self.bin_to_target[bin.min(self.bin_to_target.len() - 1)].max(size)
    }
}

impl PacketStage for MorphingStage {
    fn name(&self) -> &'static str {
        "morphing"
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        let morphed = packet.with_size(self.morph_size(packet.size));
        self.ledger.record(packet.size as u64, morphed.size as u64);
        out.push((flow, morphed));
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    fn reset(&mut self) {
        self.ledger = Overhead::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::ROOT_FLOW;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::Direction;

    fn trace_of(app: AppKind, seed: u64, secs: f64) -> Trace {
        SessionGenerator::new(app, seed).generate_secs(secs)
    }

    #[test]
    fn paper_pairing_is_a_partial_cycle() {
        assert_eq!(paper_morphing_target(AppKind::Chatting), AppKind::Gaming);
        assert_eq!(paper_morphing_target(AppKind::Gaming), AppKind::Browsing);
        assert_eq!(
            paper_morphing_target(AppKind::Browsing),
            AppKind::BitTorrent
        );
        assert_eq!(paper_morphing_target(AppKind::BitTorrent), AppKind::Video);
        assert_eq!(paper_morphing_target(AppKind::Video), AppKind::Downloading);
        assert_eq!(
            paper_morphing_target(AppKind::Downloading),
            AppKind::Downloading
        );
        assert_eq!(
            paper_morphing_target(AppKind::Uploading),
            AppKind::Uploading
        );
    }

    #[test]
    fn morphing_moves_the_mean_toward_the_target() {
        let chat = trace_of(AppKind::Chatting, 1, 120.0);
        let gaming = trace_of(AppKind::Gaming, 2, 120.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        assert_eq!(morpher.target_app(), AppKind::Gaming);
        let (morphed, overhead) = morpher.apply(&chat);
        assert_eq!(morphed.len(), chat.len());
        let before = chat.mean_packet_size();
        let after = morphed.mean_packet_size();
        let target = gaming.mean_packet_size();
        assert!(
            (after - target).abs() < (before - target).abs(),
            "morphing should move the mean toward the target: before {before:.0}, after {after:.0}, target {target:.0}"
        );
        assert!(overhead.percent() > 0.0);
        assert_eq!(overhead.added_packets(), 0, "morphing never adds packets");
    }

    #[test]
    fn packets_are_never_shrunk() {
        let video = trace_of(AppKind::Video, 3, 30.0);
        let chat = trace_of(AppKind::Chatting, 4, 120.0);
        // Morphing large-packet video toward small-packet chat must not shrink anything.
        let morpher = TrafficMorpher::from_target_trace(AppKind::Chatting, &chat);
        let (morphed, overhead) = morpher.apply(&video);
        for (orig, new) in video.packets().iter().zip(morphed.packets()) {
            assert!(new.size >= orig.size);
            assert!(new.size <= MAX_PACKET_SIZE);
        }
        // Nothing to grow either: overhead is tiny.
        assert!(overhead.percent() < 5.0);
    }

    #[test]
    fn timing_is_unchanged() {
        let chat = trace_of(AppKind::Chatting, 5, 60.0);
        let gaming = trace_of(AppKind::Gaming, 6, 60.0);
        let (morphed, _) = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming).apply(&chat);
        for (a, b) in chat.packets().iter().zip(morphed.packets()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
        }
        assert_eq!(
            chat.mean_interarrival_secs(Direction::Downlink),
            morphed.mean_interarrival_secs(Direction::Downlink)
        );
    }

    #[test]
    fn morphing_is_cheaper_than_padding() {
        // Table VI: morphing overhead (39 %) is far below padding (121 %).
        let mut morph_total = 0.0;
        let mut pad_total = 0.0;
        for (i, app) in AppKind::ALL.iter().enumerate() {
            let source = trace_of(*app, 10 + i as u64, 60.0);
            let target_app = paper_morphing_target(*app);
            let target = trace_of(target_app, 100 + i as u64, 60.0);
            let (_, morph) = TrafficMorpher::from_target_trace(target_app, &target).apply(&source);
            let (_, pad) = crate::padding::PacketPadder::new().apply(&source);
            morph_total += morph.percent();
            pad_total += pad.percent();
        }
        assert!(
            morph_total < pad_total,
            "morphing ({morph_total:.1}) must be cheaper than padding ({pad_total:.1})"
        );
    }

    #[test]
    fn stage_streams_packets_one_at_a_time() {
        // The stage with a pre-estimated source CDF morphs a live stream
        // without ever seeing the whole trace.
        let chat = trace_of(AppKind::Chatting, 7, 60.0);
        let gaming = trace_of(AppKind::Gaming, 8, 60.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        let mut stage = morpher.stage_for_source_trace(&chat);
        assert_eq!(stage.name(), "morphing");
        assert_eq!(stage.target_app(), AppKind::Gaming);
        let mut out = StageOutput::new();
        for p in chat.packets() {
            stage.on_packet(ROOT_FLOW, p, &mut out);
        }
        stage.flush(&mut out);
        assert_eq!(out.len(), chat.len());
        for ((flow, morphed), orig) in out.iter().zip(chat.packets()) {
            assert_eq!(*flow, ROOT_FLOW);
            assert!(morphed.size >= orig.size);
            assert_eq!(morphed.time, orig.time);
        }
        assert_eq!(stage.overhead().original_bytes, chat.total_bytes());
        stage.reset();
        assert_eq!(stage.overhead(), Overhead::default());
    }

    #[test]
    fn empty_source_is_a_no_op() {
        let gaming = trace_of(AppKind::Gaming, 9, 30.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        let (out, overhead) = morpher.apply(&Trace::new());
        assert!(out.is_empty());
        assert_eq!(overhead.percent(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_target_trace_panics() {
        let _ = TrafficMorpher::from_target_trace(AppKind::Gaming, &Trace::new());
    }

    #[test]
    #[should_panic]
    fn empty_source_trace_panics_for_the_stage() {
        let gaming = trace_of(AppKind::Gaming, 10, 30.0);
        let _ = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming)
            .stage_for_source_trace(&Trace::new());
    }

    fn stage_for_tests() -> MorphingStage {
        let chat = trace_of(AppKind::Chatting, 11, 60.0);
        let gaming = trace_of(AppKind::Gaming, 12, 60.0);
        TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming).stage_for_source_trace(&chat)
    }

    #[test]
    fn lut_matches_the_quantile_walk_for_every_size() {
        // The precomputed bin→target table must agree with recomputing the
        // quantile match from the CDFs for every admissible size.
        let stage = stage_for_tests();
        for size in 0..=MAX_PACKET_SIZE {
            let bin = size / stage.morpher.bin_width;
            let q = stage.source_cdf[bin.min(stage.source_cdf.len() - 1)];
            let walked = stage.morpher.target_size_at_quantile(q).max(size);
            assert_eq!(stage.morph_size(size), walked, "size {size}");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds MAX_PACKET_SIZE")]
    fn oversize_packet_trips_the_debug_assert() {
        // Sizes above the link MTU are an upstream bug: loudly reject them in
        // debug builds instead of silently saturating.
        let stage = stage_for_tests();
        let _ = stage.morph_size(MAX_PACKET_SIZE + 1);
    }

    #[test]
    fn sizes_past_the_last_source_bin_clamp_to_the_last_quantile() {
        // A source CDF estimated from a trace may cover fewer bins than the
        // MTU allows; any larger (still admissible) size must clamp to the
        // last bin's quantile rather than index out of bounds.
        let gaming = trace_of(AppKind::Gaming, 13, 60.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        // Short source CDF: two bins covering sizes 0..16 only.
        let stage = MorphingStage::new(morpher, vec![0.5, 1.0]);
        let at_last_bin = stage.morph_size(8);
        for size in [16, 100, MAX_PACKET_SIZE] {
            assert_eq!(stage.morph_size(size), at_last_bin.max(size), "size {size}");
        }
    }

    #[test]
    fn degenerate_single_bin_cdf_morphs_every_size_to_the_top_quantile() {
        let gaming = trace_of(AppKind::Gaming, 14, 60.0);
        let morpher = TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming);
        let top = morpher.target_size_at_quantile(1.0);
        let stage = MorphingStage::new(morpher, vec![1.0]);
        for size in [0, 1, 64, 700, MAX_PACKET_SIZE] {
            assert_eq!(stage.morph_size(size), top.max(size), "size {size}");
        }
    }
}
