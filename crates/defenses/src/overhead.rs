//! Byte-overhead accounting.
//!
//! The paper quantifies the cost of padding and morphing as the relative
//! increase in transmitted bytes (e.g. 121.42 % mean overhead for padding,
//! 39.44 % for morphing in Table VI), while traffic reshaping adds zero bytes.

use serde::{Deserialize, Serialize};
use traffic_gen::trace::Trace;

/// The byte overhead a defense added to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Overhead {
    /// Bytes of the original trace.
    pub original_bytes: u64,
    /// Bytes after the defense was applied.
    pub transformed_bytes: u64,
}

impl Overhead {
    /// Computes the overhead between an original and a transformed trace.
    pub fn between(original: &Trace, transformed: &Trace) -> Self {
        Overhead {
            original_bytes: original.total_bytes(),
            transformed_bytes: transformed.total_bytes(),
        }
    }

    /// Creates an overhead record directly from byte counts.
    pub fn from_bytes(original_bytes: u64, transformed_bytes: u64) -> Self {
        Overhead {
            original_bytes,
            transformed_bytes,
        }
    }

    /// Extra bytes added by the defense (saturating at zero).
    pub fn added_bytes(&self) -> u64 {
        self.transformed_bytes.saturating_sub(self.original_bytes)
    }

    /// Overhead as a percentage of the original bytes, the metric of Table VI.
    /// Returns 0 for an empty original trace.
    pub fn percent(&self) -> f64 {
        if self.original_bytes == 0 {
            return 0.0;
        }
        self.added_bytes() as f64 / self.original_bytes as f64 * 100.0
    }

    /// Combines two overhead records (e.g. downlink + uplink, or several apps).
    pub fn combined(&self, other: &Overhead) -> Overhead {
        Overhead {
            original_bytes: self.original_bytes + other.original_bytes,
            transformed_bytes: self.transformed_bytes + other.transformed_bytes,
        }
    }
}

/// Averages the *percentages* of several overhead records, which is how the
/// paper computes the "Mean" row of Table VI (a mean of per-application
/// percentages, not a byte-weighted mean).
pub fn mean_percent(overheads: &[Overhead]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    overheads.iter().map(Overhead::percent).sum::<f64>() / overheads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::packet::{Direction, PacketRecord};

    fn trace_with_sizes(sizes: &[usize]) -> Trace {
        Trace::from_packets(
            Some(AppKind::Browsing),
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    PacketRecord::at_secs(i as f64, s, Direction::Downlink, AppKind::Browsing)
                })
                .collect(),
        )
    }

    #[test]
    fn percent_overhead() {
        let original = trace_with_sizes(&[500, 500]);
        let padded = trace_with_sizes(&[1500, 1500]);
        let o = Overhead::between(&original, &padded);
        assert_eq!(o.added_bytes(), 2000);
        assert!((o.percent() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_original_bytes_gives_zero_percent() {
        let o = Overhead::from_bytes(0, 100);
        assert_eq!(o.percent(), 0.0);
    }

    #[test]
    fn shrinking_never_reports_negative_overhead() {
        let o = Overhead::from_bytes(1000, 800);
        assert_eq!(o.added_bytes(), 0);
        assert_eq!(o.percent(), 0.0);
    }

    #[test]
    fn combination_and_mean() {
        let a = Overhead::from_bytes(100, 200); // 100 %
        let b = Overhead::from_bytes(1000, 1000); // 0 %
        let c = a.combined(&b);
        assert_eq!(c.original_bytes, 1100);
        assert_eq!(c.transformed_bytes, 1200);
        assert!((mean_percent(&[a, b]) - 50.0).abs() < 1e-9);
        assert_eq!(mean_percent(&[]), 0.0);
    }
}
