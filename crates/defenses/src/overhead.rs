//! The byte/packet-overhead ledger shared by every defense.
//!
//! The paper quantifies the cost of padding and morphing as the relative
//! increase in transmitted bytes (e.g. 121.42 % mean overhead for padding,
//! 39.44 % for morphing in Table VI), while traffic reshaping adds zero bytes.
//!
//! [`Overhead`] is the single accounting helper used by all defenses: the
//! streaming stages of [`crate::stage`] record every packet they absorb and
//! emit through [`absorb`](Overhead::absorb) / [`emit`](Overhead::emit) /
//! [`record`](Overhead::record), and the batch entry points simply return
//! their stage's ledger — there is no per-defense bookkeeping anywhere else.

use serde::{Deserialize, Serialize};
use traffic_gen::trace::Trace;

/// The byte and packet overhead a defense (or a whole stage pipeline) added
/// to a traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Overhead {
    /// Bytes of the original traffic absorbed so far.
    pub original_bytes: u64,
    /// Bytes emitted after the defense was applied.
    pub transformed_bytes: u64,
    /// Packets of the original traffic absorbed so far.
    pub original_packets: u64,
    /// Packets emitted after the defense was applied.
    pub transformed_packets: u64,
}

impl Overhead {
    /// Computes the overhead between an original and a transformed trace.
    pub fn between(original: &Trace, transformed: &Trace) -> Self {
        Overhead {
            original_bytes: original.total_bytes(),
            transformed_bytes: transformed.total_bytes(),
            original_packets: original.len() as u64,
            transformed_packets: transformed.len() as u64,
        }
    }

    /// Creates an overhead record directly from byte counts (packet counts
    /// unknown, left at zero).
    pub fn from_bytes(original_bytes: u64, transformed_bytes: u64) -> Self {
        Overhead {
            original_bytes,
            transformed_bytes,
            original_packets: 0,
            transformed_packets: 0,
        }
    }

    /// Records one packet of `bytes` entering the defense.
    pub fn absorb(&mut self, bytes: u64) {
        self.original_packets += 1;
        self.original_bytes += bytes;
    }

    /// Records one packet of `bytes` leaving the defense.
    pub fn emit(&mut self, bytes: u64) {
        self.transformed_packets += 1;
        self.transformed_bytes += bytes;
    }

    /// Records a one-in/one-out transformation of a single packet — the
    /// common case for padding, morphing and the partitioning stages.
    pub fn record(&mut self, original_bytes: u64, transformed_bytes: u64) {
        self.absorb(original_bytes);
        self.emit(transformed_bytes);
    }

    /// Extra bytes added by the defense (saturating at zero).
    pub fn added_bytes(&self) -> u64 {
        self.transformed_bytes.saturating_sub(self.original_bytes)
    }

    /// Extra packets added by the defense (saturating at zero).
    pub fn added_packets(&self) -> u64 {
        self.transformed_packets
            .saturating_sub(self.original_packets)
    }

    /// Overhead as a percentage of the original bytes, the metric of Table VI.
    /// Returns 0 for an empty original trace.
    pub fn percent(&self) -> f64 {
        if self.original_bytes == 0 {
            return 0.0;
        }
        self.added_bytes() as f64 / self.original_bytes as f64 * 100.0
    }

    /// Combines two overhead records (e.g. downlink + uplink, or several apps).
    pub fn combined(&self, other: &Overhead) -> Overhead {
        Overhead {
            original_bytes: self.original_bytes + other.original_bytes,
            transformed_bytes: self.transformed_bytes + other.transformed_bytes,
            original_packets: self.original_packets + other.original_packets,
            transformed_packets: self.transformed_packets + other.transformed_packets,
        }
    }
}

/// Averages the *percentages* of several overhead records, which is how the
/// paper computes the "Mean" row of Table VI (a mean of per-application
/// percentages, not a byte-weighted mean).
pub fn mean_percent(overheads: &[Overhead]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    overheads.iter().map(Overhead::percent).sum::<f64>() / overheads.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::packet::{Direction, PacketRecord};

    fn trace_with_sizes(sizes: &[usize]) -> Trace {
        Trace::from_packets(
            Some(AppKind::Browsing),
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    PacketRecord::at_secs(i as f64, s, Direction::Downlink, AppKind::Browsing)
                })
                .collect(),
        )
    }

    #[test]
    fn percent_overhead() {
        let original = trace_with_sizes(&[500, 500]);
        let padded = trace_with_sizes(&[1500, 1500]);
        let o = Overhead::between(&original, &padded);
        assert_eq!(o.added_bytes(), 2000);
        assert_eq!(o.original_packets, 2);
        assert_eq!(o.transformed_packets, 2);
        assert_eq!(o.added_packets(), 0);
        assert!((o.percent() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_original_bytes_gives_zero_percent() {
        let o = Overhead::from_bytes(0, 100);
        assert_eq!(o.percent(), 0.0);
    }

    #[test]
    fn shrinking_never_reports_negative_overhead() {
        let o = Overhead::from_bytes(1000, 800);
        assert_eq!(o.added_bytes(), 0);
        assert_eq!(o.percent(), 0.0);
    }

    #[test]
    fn per_packet_ledger_matches_whole_trace_accounting() {
        let original = trace_with_sizes(&[100, 700, 1400]);
        let padded = trace_with_sizes(&[1576, 1576, 1576]);
        let whole = Overhead::between(&original, &padded);
        let mut ledger = Overhead::default();
        for (o, t) in original.packets().iter().zip(padded.packets()) {
            ledger.record(o.size as u64, t.size as u64);
        }
        assert_eq!(ledger, whole);
    }

    #[test]
    fn asymmetric_absorb_emit_tracks_added_packets() {
        let mut ledger = Overhead::default();
        ledger.absorb(500);
        ledger.emit(500);
        ledger.emit(60); // e.g. a cover packet injected by a future defense
        assert_eq!(ledger.added_packets(), 1);
        assert_eq!(ledger.added_bytes(), 60);
    }

    #[test]
    fn combination_and_mean() {
        let a = Overhead::from_bytes(100, 200); // 100 %
        let b = Overhead::from_bytes(1000, 1000); // 0 %
        let c = a.combined(&b);
        assert_eq!(c.original_bytes, 1100);
        assert_eq!(c.transformed_bytes, 1200);
        assert!((mean_percent(&[a, b]) - 50.0).abs() < 1e-9);
        assert_eq!(mean_percent(&[]), 0.0);
    }
}
