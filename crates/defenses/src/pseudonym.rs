//! MAC-address pseudonyms.
//!
//! Pseudonym schemes periodically replace the client's MAC address with a
//! fresh disposable identifier so that an eavesdropper cannot link traffic
//! across rotation boundaries. The paper's criticism (§II-B) is that the
//! rotation happens at a coarse granularity (per session or when idle), so
//! every individual partition still exposes the original traffic features —
//! which is exactly what this module lets the experiments demonstrate.

use rand::Rng;
use serde::{Deserialize, Serialize};
use traffic_gen::trace::Trace;
use wlan_sim::mac::MacAddress;
use wlan_sim::time::SimDuration;

/// Rotates the client MAC address every `rotation_period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudonymRotator {
    rotation_period: SimDuration,
}

impl Default for PseudonymRotator {
    fn default() -> Self {
        // A common choice in the literature: rotate once per session, here
        // approximated as every 60 seconds of activity.
        PseudonymRotator {
            rotation_period: SimDuration::from_secs(60),
        }
    }
}

impl PseudonymRotator {
    /// Creates a rotator with the given rotation period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(rotation_period: SimDuration) -> Self {
        assert!(
            !rotation_period.is_zero(),
            "rotation period must be positive"
        );
        PseudonymRotator { rotation_period }
    }

    /// The rotation period.
    pub fn rotation_period(&self) -> SimDuration {
        self.rotation_period
    }

    /// Splits a trace into per-pseudonym partitions: each partition is the
    /// traffic sent under one disposable MAC address, labelled with that
    /// address. The adversary sees each partition as a distinct device.
    pub fn partition<R: Rng + ?Sized>(
        &self,
        trace: &Trace,
        rng: &mut R,
    ) -> Vec<(MacAddress, Trace)> {
        if trace.is_empty() {
            return Vec::new();
        }
        let start = trace.packets()[0].time;
        let period = self.rotation_period.as_micros().max(1);
        let mut partitions: Vec<(MacAddress, Trace)> = Vec::new();
        let mut current_epoch: Option<u64> = None;
        for p in trace.packets() {
            let epoch = p.time.saturating_since(start).as_micros() / period;
            if current_epoch != Some(epoch) {
                current_epoch = Some(epoch);
                partitions.push((
                    MacAddress::random_locally_administered(rng),
                    Trace::for_app(trace.app().expect("labelled trace")),
                ));
                if let Some(app) = trace.app() {
                    partitions
                        .last_mut()
                        .expect("just pushed")
                        .1
                        .set_app(Some(app));
                } else {
                    partitions.last_mut().expect("just pushed").1.set_app(None);
                }
            }
            partitions
                .last_mut()
                .expect("partition exists after epoch check")
                .1
                .push(*p);
        }
        partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    #[test]
    fn partitions_cover_the_trace_with_distinct_addresses() {
        let trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(180.0);
        let mut rng = StdRng::seed_from_u64(1);
        let rotator = PseudonymRotator::default();
        assert_eq!(rotator.rotation_period(), SimDuration::from_secs(60));
        let partitions = rotator.partition(&trace, &mut rng);
        assert!(
            partitions.len() >= 3,
            "3 minutes should give >= 3 pseudonyms"
        );
        let total: usize = partitions.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, trace.len());
        let addrs: HashSet<_> = partitions.iter().map(|(a, _)| *a).collect();
        assert_eq!(addrs.len(), partitions.len(), "pseudonyms must be unique");
        for (a, t) in &partitions {
            assert!(a.is_locally_administered());
            assert_eq!(t.app(), Some(AppKind::Video));
        }
    }

    #[test]
    fn per_partition_features_still_match_the_original_application() {
        // The paper's point: each pseudonym partition still looks like the app.
        let trace = SessionGenerator::new(AppKind::Downloading, 2).generate_secs(120.0);
        let mut rng = StdRng::seed_from_u64(2);
        let partitions = PseudonymRotator::default().partition(&trace, &mut rng);
        for (_, part) in partitions {
            if part.len() < 10 {
                continue;
            }
            let down: Vec<usize> = part.sizes(traffic_gen::packet::Direction::Downlink);
            let mean = down.iter().sum::<usize>() as f64 / down.len().max(1) as f64;
            assert!(
                mean > 1400.0,
                "downloading partitions keep their large downlink mean packet size (got {mean})"
            );
        }
    }

    #[test]
    fn empty_trace_has_no_partitions() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(PseudonymRotator::default()
            .partition(&Trace::new(), &mut rng)
            .is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = PseudonymRotator::new(SimDuration::ZERO);
    }
}
