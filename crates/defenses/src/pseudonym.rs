//! MAC-address pseudonyms.
//!
//! Pseudonym schemes periodically replace the client's MAC address with a
//! fresh disposable identifier so that an eavesdropper cannot link traffic
//! across rotation boundaries. The paper's criticism (§II-B) is that the
//! rotation happens at a coarse granularity (per session or when idle), so
//! every individual partition still exposes the original traffic features —
//! which is exactly what this module lets the experiments demonstrate.
//!
//! Rotation is an online mechanism, so [`PseudonymStage`] is the primary
//! implementation: a partitioning [`PacketStage`] that opens a fresh sub-flow
//! (with a freshly drawn locally-administered MAC) every time the rotation
//! period elapses, in constant memory per sub-flow. The batch
//! [`PseudonymRotator::partition`] is a thin wrapper that drives a stage over
//! a materialised trace — identical partitions per seed (property-tested in
//! `tests/stage_equivalence.rs`).

use crate::overhead::Overhead;
use crate::stage::{FlowId, FlowMap, PacketStage, StageOutput, ROOT_FLOW};
use rand::Rng;
use serde::{Deserialize, Serialize};
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use wlan_sim::mac::MacAddress;
use wlan_sim::time::{SimDuration, SimTime};

/// Rotates the client MAC address every `rotation_period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudonymRotator {
    rotation_period: SimDuration,
}

impl Default for PseudonymRotator {
    fn default() -> Self {
        // A common choice in the literature: rotate once per session, here
        // approximated as every 60 seconds of activity.
        PseudonymRotator {
            rotation_period: SimDuration::from_secs(60),
        }
    }
}

impl PseudonymRotator {
    /// Creates a rotator with the given rotation period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(rotation_period: SimDuration) -> Self {
        assert!(
            !rotation_period.is_zero(),
            "rotation period must be positive"
        );
        PseudonymRotator { rotation_period }
    }

    /// The rotation period.
    pub fn rotation_period(&self) -> SimDuration {
        self.rotation_period
    }

    /// The streaming rotation stage, drawing pseudonyms from `rng`.
    ///
    /// Pass an owned seeded generator for standalone pipelines, or `&mut rng`
    /// to share a caller's generator (as the batch wrapper does).
    pub fn stage_with_rng<R: Rng>(&self, rng: R) -> PseudonymStage<R> {
        PseudonymStage::new(*self, rng)
    }

    /// Splits a trace into per-pseudonym partitions: each partition is the
    /// traffic sent under one disposable MAC address, labelled with that
    /// address. The adversary sees each partition as a distinct device.
    ///
    /// Thin batch wrapper over [`PseudonymStage`]: the packets stream through
    /// the stage, and the per-sub-flow output is grouped back into traces.
    pub fn partition<R: Rng + ?Sized>(
        &self,
        trace: &Trace,
        rng: &mut R,
    ) -> Vec<(MacAddress, Trace)> {
        let mut stage = self.stage_with_rng(&mut *rng);
        let mut staged = StageOutput::with_capacity(trace.len());
        for packet in trace.packets() {
            stage.route(ROOT_FLOW, packet, &mut staged);
        }
        let mut partitions: Vec<(MacAddress, Trace)> = (0..stage.flow_count())
            .map(|flow| {
                let mut t = Trace::new();
                t.set_app(trace.app());
                (
                    stage
                        .pseudonym_of(flow as FlowId)
                        .expect("every allocated flow has a pseudonym"),
                    t,
                )
            })
            .collect();
        for (flow, packet) in staged {
            partitions[flow as usize].1.push(packet);
        }
        partitions
    }
}

/// The streaming pseudonym defense: routes packets onto a fresh sub-flow
/// (fresh random locally-administered MAC) every rotation period.
///
/// Epochs are measured from the first packet the stage sees, exactly like the
/// batch partitioning measured from a trace's first packet. When composed
/// after another partitioning stage, each incoming sub-flow rotates through
/// its own pseudonyms (keyed per `(incoming flow, epoch)`).
#[derive(Debug)]
pub struct PseudonymStage<R: Rng> {
    rotator: PseudonymRotator,
    rng: R,
    origin: Option<SimTime>,
    flows: FlowMap<u64>,
    pseudonyms: Vec<MacAddress>,
    ledger: Overhead,
}

impl<R: Rng> PseudonymStage<R> {
    /// Creates a stage for `rotator`, drawing pseudonyms from `rng`.
    pub fn new(rotator: PseudonymRotator, rng: R) -> Self {
        PseudonymStage {
            rotator,
            rng,
            origin: None,
            flows: FlowMap::new(),
            pseudonyms: Vec::new(),
            ledger: Overhead::default(),
        }
    }

    /// Number of pseudonym sub-flows opened so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The MAC address transmitting sub-flow `flow`.
    pub fn pseudonym_of(&self, flow: FlowId) -> Option<MacAddress> {
        self.pseudonyms.get(flow as usize).copied()
    }

    /// The per-packet routing kernel shared by [`PacketStage::on_packet`] and
    /// the batch wrapper (which drives it without the trait's `Send + Debug`
    /// object bounds, so it works with any borrowed generator).
    fn route(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        let origin = *self.origin.get_or_insert(packet.time);
        let period = self.rotator.rotation_period.as_micros().max(1);
        let epoch = packet.time.saturating_since(origin).as_micros() / period;
        let (out_flow, fresh) = self.flows.id_of(flow, epoch);
        if fresh {
            self.pseudonyms
                .push(MacAddress::random_locally_administered(&mut self.rng));
        }
        self.ledger.record(packet.size as u64, packet.size as u64);
        out.push((out_flow, *packet));
    }
}

impl<R: Rng + std::fmt::Debug + Send> PacketStage for PseudonymStage<R> {
    fn name(&self) -> &'static str {
        "pseudonym"
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        self.route(flow, packet, out);
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    /// Clears epoch/sub-flow state and the ledger. The random generator keeps
    /// its state: pseudonyms are disposable, so a reused stage simply draws
    /// fresh addresses for the next session.
    fn reset(&mut self) {
        self.origin = None;
        self.flows.reset();
        self.pseudonyms.clear();
        self.ledger = Overhead::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    #[test]
    fn partitions_cover_the_trace_with_distinct_addresses() {
        let trace = SessionGenerator::new(AppKind::Video, 1).generate_secs(180.0);
        let mut rng = StdRng::seed_from_u64(1);
        let rotator = PseudonymRotator::default();
        assert_eq!(rotator.rotation_period(), SimDuration::from_secs(60));
        let partitions = rotator.partition(&trace, &mut rng);
        assert!(
            partitions.len() >= 3,
            "3 minutes should give >= 3 pseudonyms"
        );
        let total: usize = partitions.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, trace.len());
        let addrs: HashSet<_> = partitions.iter().map(|(a, _)| *a).collect();
        assert_eq!(addrs.len(), partitions.len(), "pseudonyms must be unique");
        for (a, t) in &partitions {
            assert!(a.is_locally_administered());
            assert_eq!(t.app(), Some(AppKind::Video));
        }
    }

    #[test]
    fn per_partition_features_still_match_the_original_application() {
        // The paper's point: each pseudonym partition still looks like the app.
        let trace = SessionGenerator::new(AppKind::Downloading, 2).generate_secs(120.0);
        let mut rng = StdRng::seed_from_u64(2);
        let partitions = PseudonymRotator::default().partition(&trace, &mut rng);
        for (_, part) in partitions {
            if part.len() < 10 {
                continue;
            }
            let down: Vec<usize> = part.sizes(traffic_gen::packet::Direction::Downlink);
            let mean = down.iter().sum::<usize>() as f64 / down.len().max(1) as f64;
            assert!(
                mean > 1400.0,
                "downloading partitions keep their large downlink mean packet size (got {mean})"
            );
        }
    }

    #[test]
    fn stage_rotates_flows_on_epoch_boundaries() {
        let rotator = PseudonymRotator::new(SimDuration::from_secs(10));
        let mut stage = rotator.stage_with_rng(StdRng::seed_from_u64(5));
        assert_eq!(stage.name(), "pseudonym");
        let mut out = StageOutput::new();
        let p = |secs: f64| {
            PacketRecord::at_secs(
                secs,
                500,
                traffic_gen::packet::Direction::Downlink,
                AppKind::Video,
            )
        };
        for secs in [0.0, 5.0, 9.9, 10.1, 25.0] {
            stage.on_packet(crate::stage::ROOT_FLOW, &p(secs), &mut out);
        }
        let flows: Vec<FlowId> = out.iter().map(|(f, _)| *f).collect();
        assert_eq!(flows, vec![0, 0, 0, 1, 2]);
        assert_eq!(stage.flow_count(), 3);
        let macs: HashSet<_> = (0..3).map(|f| stage.pseudonym_of(f).unwrap()).collect();
        assert_eq!(macs.len(), 3);
        assert_eq!(stage.pseudonym_of(9), None);
        // Zero byte overhead, packets preserved.
        assert_eq!(stage.overhead().percent(), 0.0);
        assert_eq!(stage.overhead().transformed_packets, 5);
        // Reset clears partitions but keeps drawing fresh addresses.
        stage.reset();
        assert_eq!(stage.flow_count(), 0);
        stage.on_packet(crate::stage::ROOT_FLOW, &p(0.0), &mut out);
        assert!(!macs.contains(&stage.pseudonym_of(0).unwrap()));
    }

    #[test]
    fn empty_trace_has_no_partitions() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(PseudonymRotator::default()
            .partition(&Trace::new(), &mut rng)
            .is_empty());
    }

    #[test]
    fn unlabelled_traces_partition_without_labels() {
        let labelled = SessionGenerator::new(AppKind::Video, 4).generate_secs(30.0);
        let mut unlabelled = labelled.clone();
        unlabelled.set_app(None);
        let mut rng = StdRng::seed_from_u64(4);
        let partitions = PseudonymRotator::default().partition(&unlabelled, &mut rng);
        assert!(!partitions.is_empty());
        assert!(partitions.iter().all(|(_, t)| t.app().is_none()));
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = PseudonymRotator::new(SimDuration::ZERO);
    }
}
