//! Frequency hopping.
//!
//! The paper's FH baseline (§IV, footnote 2) uses VirtualWiFi to hop between
//! channels 1, 6 and 11 with a 500 ms dwell per channel. An eavesdropper
//! tuned to a single channel therefore only observes the slices of traffic
//! transmitted while the client sat on that channel. As the paper argues,
//! this partitions the traffic in *time* but does not change the features of
//! any partition, so the classifier barely suffers.

use serde::{Deserialize, Serialize};
use traffic_gen::trace::Trace;
use wlan_sim::phy::Channel;
use wlan_sim::time::SimDuration;

/// A deterministic channel-hopping schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyHopper {
    channels: Vec<Channel>,
    dwell: SimDuration,
}

impl Default for FrequencyHopper {
    fn default() -> Self {
        // The paper's configuration: channels 1, 6, 11 with 500 ms dwell.
        FrequencyHopper {
            channels: Channel::hop_set().to_vec(),
            dwell: SimDuration::from_millis(500),
        }
    }
}

impl FrequencyHopper {
    /// Creates a hopping schedule.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the dwell time is zero.
    pub fn new(channels: Vec<Channel>, dwell: SimDuration) -> Self {
        assert!(!channels.is_empty(), "need at least one channel");
        assert!(!dwell.is_zero(), "dwell time must be positive");
        FrequencyHopper { channels, dwell }
    }

    /// The hop set.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The dwell time per channel.
    pub fn dwell(&self) -> SimDuration {
        self.dwell
    }

    /// The channel in use at `elapsed` time since the start of the schedule.
    pub fn channel_at(&self, elapsed: SimDuration) -> Channel {
        let slot = (elapsed.as_micros() / self.dwell.as_micros().max(1)) as usize;
        self.channels[slot % self.channels.len()]
    }

    /// Splits a trace into per-channel partitions: `partition[i]` contains the
    /// packets transmitted while the schedule was on `channels[i]`. This is
    /// what an adversary with one radio per channel would collect; an
    /// adversary with a single radio sees exactly one of the partitions.
    pub fn partition(&self, trace: &Trace) -> Vec<(Channel, Trace)> {
        let mut partitions: Vec<(Channel, Trace)> = self
            .channels
            .iter()
            .map(|&c| {
                let mut t = Trace::new();
                t.set_app(trace.app());
                (c, t)
            })
            .collect();
        let Some(start) = trace.start_time() else {
            return partitions;
        };
        for p in trace.packets() {
            let elapsed = p.time.saturating_since(start);
            let slot = (elapsed.as_micros() / self.dwell.as_micros().max(1)) as usize;
            let idx = slot % self.channels.len();
            partitions[idx].1.push(*p);
        }
        partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    #[test]
    fn default_schedule_matches_the_paper() {
        let fh = FrequencyHopper::default();
        assert_eq!(fh.channels().len(), 3);
        assert_eq!(fh.dwell(), SimDuration::from_millis(500));
        assert_eq!(fh.channel_at(SimDuration::from_millis(0)), Channel::CH1);
        assert_eq!(fh.channel_at(SimDuration::from_millis(600)), Channel::CH6);
        assert_eq!(fh.channel_at(SimDuration::from_millis(1100)), Channel::CH11);
        assert_eq!(fh.channel_at(SimDuration::from_millis(1600)), Channel::CH1);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(30.0);
        let fh = FrequencyHopper::default();
        let partitions = fh.partition(&trace);
        assert_eq!(partitions.len(), 3);
        let total: usize = partitions.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, trace.len());
        for (_, t) in &partitions {
            assert_eq!(t.app(), Some(AppKind::BitTorrent));
            assert!(!t.is_empty(), "30 s of BT should hit every channel");
        }
    }

    #[test]
    fn per_channel_partitions_keep_the_original_mean_size() {
        // The paper's criticism of FH: each partition still looks like the app.
        let trace = SessionGenerator::new(AppKind::Video, 2).generate_secs(30.0);
        let original_mean = trace.mean_packet_size();
        for (_, part) in FrequencyHopper::default().partition(&trace) {
            assert!(
                (part.mean_packet_size() - original_mean).abs() < 100.0,
                "channel partition mean {} vs original {original_mean}",
                part.mean_packet_size()
            );
        }
    }

    #[test]
    fn empty_trace_gives_empty_partitions() {
        let partitions = FrequencyHopper::default().partition(&Trace::new());
        assert_eq!(partitions.len(), 3);
        assert!(partitions.iter().all(|(_, t)| t.is_empty()));
    }

    #[test]
    #[should_panic]
    fn empty_channel_set_panics() {
        let _ = FrequencyHopper::new(vec![], SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic]
    fn zero_dwell_panics() {
        let _ = FrequencyHopper::new(vec![Channel::CH1], SimDuration::ZERO);
    }
}
