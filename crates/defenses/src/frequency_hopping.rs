//! Frequency hopping.
//!
//! The paper's FH baseline (§IV, footnote 2) uses VirtualWiFi to hop between
//! channels 1, 6 and 11 with a 500 ms dwell per channel. An eavesdropper
//! tuned to a single channel therefore only observes the slices of traffic
//! transmitted while the client sat on that channel. As the paper argues,
//! this partitions the traffic in *time* but does not change the features of
//! any partition, so the classifier barely suffers.
//!
//! Hopping is an online mechanism, so [`FrequencyHoppingStage`] is the
//! primary implementation: a partitioning [`PacketStage`] that routes each
//! packet onto the sub-flow of the channel the schedule is currently dwelling
//! on. The batch [`FrequencyHopper::partition`] is a thin wrapper driving a
//! stage over a materialised trace (identical partitions, property-tested in
//! `tests/stage_equivalence.rs`).

use crate::overhead::Overhead;
use crate::stage::{stage_trace, FlowId, FlowMap, PacketStage, StageOutput};
use serde::{Deserialize, Serialize};
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use wlan_sim::phy::Channel;
use wlan_sim::time::{SimDuration, SimTime};

/// A deterministic channel-hopping schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyHopper {
    channels: Vec<Channel>,
    dwell: SimDuration,
}

impl Default for FrequencyHopper {
    fn default() -> Self {
        // The paper's configuration: channels 1, 6, 11 with 500 ms dwell.
        FrequencyHopper {
            channels: Channel::hop_set().to_vec(),
            dwell: SimDuration::from_millis(500),
        }
    }
}

impl FrequencyHopper {
    /// Creates a hopping schedule.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the dwell time is zero.
    pub fn new(channels: Vec<Channel>, dwell: SimDuration) -> Self {
        assert!(!channels.is_empty(), "need at least one channel");
        assert!(!dwell.is_zero(), "dwell time must be positive");
        FrequencyHopper { channels, dwell }
    }

    /// The hop set.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The dwell time per channel.
    pub fn dwell(&self) -> SimDuration {
        self.dwell
    }

    /// The channel in use at `elapsed` time since the start of the schedule.
    pub fn channel_at(&self, elapsed: SimDuration) -> Channel {
        self.channels[self.channel_index_at(elapsed)]
    }

    /// The index into [`channels`](Self::channels) in use at `elapsed` time.
    fn channel_index_at(&self, elapsed: SimDuration) -> usize {
        let slot = (elapsed.as_micros() / self.dwell.as_micros().max(1)) as usize;
        slot % self.channels.len()
    }

    /// The streaming hopping stage for this schedule.
    pub fn stage(&self) -> FrequencyHoppingStage {
        FrequencyHoppingStage::new(self.clone())
    }

    /// Splits a trace into per-channel partitions: `partition[i]` contains the
    /// packets transmitted while the schedule was on `channels[i]`. This is
    /// what an adversary with one radio per channel would collect; an
    /// adversary with a single radio sees exactly one of the partitions.
    ///
    /// Thin batch wrapper over [`FrequencyHoppingStage`]: the packets stream
    /// through the stage and are grouped back into channel-ordered traces
    /// (channels the schedule never visited stay empty).
    pub fn partition(&self, trace: &Trace) -> Vec<(Channel, Trace)> {
        let mut partitions: Vec<(Channel, Trace)> = self
            .channels
            .iter()
            .map(|&c| {
                let mut t = Trace::new();
                t.set_app(trace.app());
                (c, t)
            })
            .collect();
        let mut stage = self.stage();
        let staged = stage_trace(&mut stage, trace);
        for (flow, packet) in staged {
            let idx = stage
                .channel_index_of(flow)
                .expect("stage emitted an unallocated flow");
            partitions[idx].1.push(packet);
        }
        partitions
    }
}

/// The streaming frequency-hopping defense: routes each packet onto the
/// sub-flow of the channel the schedule dwells on at the packet's timestamp.
///
/// The schedule clock starts at the first packet the stage sees (matching the
/// batch partitioning, which measures from a trace's first packet). Sub-flows
/// are allocated per `(incoming flow, channel)` in first-appearance order.
#[derive(Debug, Clone)]
pub struct FrequencyHoppingStage {
    hopper: FrequencyHopper,
    origin: Option<SimTime>,
    flows: FlowMap<usize>,
    channel_indices: Vec<usize>,
    ledger: Overhead,
}

impl FrequencyHoppingStage {
    /// Creates a stage for the given schedule.
    pub fn new(hopper: FrequencyHopper) -> Self {
        FrequencyHoppingStage {
            hopper,
            origin: None,
            flows: FlowMap::new(),
            channel_indices: Vec::new(),
            ledger: Overhead::default(),
        }
    }

    /// Number of channel sub-flows opened so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The index into the schedule's hop set that sub-flow `flow` carries.
    pub fn channel_index_of(&self, flow: FlowId) -> Option<usize> {
        self.channel_indices.get(flow as usize).copied()
    }

    /// The channel that sub-flow `flow` carries.
    pub fn channel_of(&self, flow: FlowId) -> Option<Channel> {
        self.channel_index_of(flow)
            .map(|i| self.hopper.channels()[i])
    }
}

impl PacketStage for FrequencyHoppingStage {
    fn name(&self) -> &'static str {
        "frequency-hopping"
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        let origin = *self.origin.get_or_insert(packet.time);
        let idx = self
            .hopper
            .channel_index_at(packet.time.saturating_since(origin));
        let (out_flow, fresh) = self.flows.id_of(flow, idx);
        if fresh {
            self.channel_indices.push(idx);
        }
        self.ledger.record(packet.size as u64, packet.size as u64);
        out.push((out_flow, *packet));
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    fn reset(&mut self) {
        self.origin = None;
        self.flows.reset();
        self.channel_indices.clear();
        self.ledger = Overhead::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;

    #[test]
    fn default_schedule_matches_the_paper() {
        let fh = FrequencyHopper::default();
        assert_eq!(fh.channels().len(), 3);
        assert_eq!(fh.dwell(), SimDuration::from_millis(500));
        assert_eq!(fh.channel_at(SimDuration::from_millis(0)), Channel::CH1);
        assert_eq!(fh.channel_at(SimDuration::from_millis(600)), Channel::CH6);
        assert_eq!(fh.channel_at(SimDuration::from_millis(1100)), Channel::CH11);
        assert_eq!(fh.channel_at(SimDuration::from_millis(1600)), Channel::CH1);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(30.0);
        let fh = FrequencyHopper::default();
        let partitions = fh.partition(&trace);
        assert_eq!(partitions.len(), 3);
        let total: usize = partitions.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, trace.len());
        for (_, t) in &partitions {
            assert_eq!(t.app(), Some(AppKind::BitTorrent));
            assert!(!t.is_empty(), "30 s of BT should hit every channel");
        }
    }

    #[test]
    fn per_channel_partitions_keep_the_original_mean_size() {
        // The paper's criticism of FH: each partition still looks like the app.
        let trace = SessionGenerator::new(AppKind::Video, 2).generate_secs(30.0);
        let original_mean = trace.mean_packet_size();
        for (_, part) in FrequencyHopper::default().partition(&trace) {
            assert!(
                (part.mean_packet_size() - original_mean).abs() < 100.0,
                "channel partition mean {} vs original {original_mean}",
                part.mean_packet_size()
            );
        }
    }

    #[test]
    fn stage_routes_packets_by_dwell_slot() {
        let fh = FrequencyHopper::default();
        let mut stage = fh.stage();
        assert_eq!(stage.name(), "frequency-hopping");
        let p = |secs: f64| {
            PacketRecord::at_secs(
                secs,
                300,
                traffic_gen::packet::Direction::Uplink,
                AppKind::Gaming,
            )
        };
        let mut out = StageOutput::new();
        for secs in [0.0, 0.2, 0.6, 1.2, 1.6] {
            stage.on_packet(crate::stage::ROOT_FLOW, &p(secs), &mut out);
        }
        stage.flush(&mut out);
        let channels: Vec<Channel> = out
            .iter()
            .map(|(f, _)| stage.channel_of(*f).unwrap())
            .collect();
        assert_eq!(
            channels,
            vec![
                Channel::CH1,
                Channel::CH1,
                Channel::CH6,
                Channel::CH11,
                Channel::CH1
            ]
        );
        assert_eq!(stage.flow_count(), 3);
        assert_eq!(stage.channel_of(9), None);
        assert_eq!(stage.overhead().percent(), 0.0, "FH adds no bytes");
        stage.reset();
        assert_eq!(stage.flow_count(), 0);
        assert_eq!(stage.overhead(), Overhead::default());
    }

    #[test]
    fn empty_trace_gives_empty_partitions() {
        let partitions = FrequencyHopper::default().partition(&Trace::new());
        assert_eq!(partitions.len(), 3);
        assert!(partitions.iter().all(|(_, t)| t.is_empty()));
    }

    #[test]
    #[should_panic]
    fn empty_channel_set_panics() {
        let _ = FrequencyHopper::new(vec![], SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic]
    fn zero_dwell_panics() {
        let _ = FrequencyHopper::new(vec![Channel::CH1], SimDuration::ZERO);
    }
}
