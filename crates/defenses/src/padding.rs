//! Packet padding.
//!
//! The oldest countermeasure against size-based traffic analysis: every packet
//! is padded up to a fixed target (the paper pads to the maximum observed
//! packet size of 1576 bytes). The paper's point — which Table VI reproduces —
//! is that padding is extremely expensive (121 % mean overhead) and still
//! leaves timing features intact, so the adversary barely loses accuracy.

use crate::overhead::Overhead;
use serde::{Deserialize, Serialize};
use traffic_gen::trace::Trace;
use traffic_gen::MAX_PACKET_SIZE;

/// Pads every packet of a trace to a fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketPadder {
    target_size: usize,
}

impl Default for PacketPadder {
    fn default() -> Self {
        PacketPadder {
            target_size: MAX_PACKET_SIZE,
        }
    }
}

impl PacketPadder {
    /// Creates a padder that pads to the paper's maximum packet size (1576 bytes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a padder with a custom target size.
    ///
    /// # Panics
    ///
    /// Panics if `target_size` is zero.
    pub fn to_size(target_size: usize) -> Self {
        assert!(target_size > 0, "padding target must be positive");
        PacketPadder { target_size }
    }

    /// The padding target in bytes.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Pads a trace, returning the transformed trace and its overhead.
    ///
    /// Packets already larger than the target keep their size (padding never
    /// truncates); timestamps and directions are untouched, which is exactly
    /// why the timing-based attack of Table VI still works.
    pub fn apply(&self, trace: &Trace) -> (Trace, Overhead) {
        let packets = trace
            .packets()
            .iter()
            .map(|p| p.with_size(p.size.max(self.target_size)))
            .collect();
        let padded = Trace::from_packets(trace.app(), packets);
        let overhead = Overhead::between(trace, &padded);
        (padded, overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::{Direction, PacketRecord};

    #[test]
    fn pads_everything_to_the_target() {
        let trace = SessionGenerator::new(AppKind::Chatting, 1).generate_secs(30.0);
        let (padded, overhead) = PacketPadder::new().apply(&trace);
        assert_eq!(padded.len(), trace.len());
        assert!(padded.packets().iter().all(|p| p.size == MAX_PACKET_SIZE));
        assert!(overhead.percent() > 100.0, "chat padding is very expensive");
    }

    #[test]
    fn preserves_timestamps_directions_and_label() {
        let trace = SessionGenerator::new(AppKind::Gaming, 2).generate_secs(10.0);
        let (padded, _) = PacketPadder::new().apply(&trace);
        assert_eq!(padded.app(), trace.app());
        for (a, b) in trace.packets().iter().zip(padded.packets()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
            assert!(b.size >= a.size);
        }
    }

    #[test]
    fn never_truncates_oversized_packets() {
        let trace = Trace::from_packets(
            Some(AppKind::Downloading),
            vec![PacketRecord::at_secs(
                0.0,
                1576,
                Direction::Downlink,
                AppKind::Downloading,
            )],
        );
        let (padded, overhead) = PacketPadder::to_size(500).apply(&trace);
        assert_eq!(padded.packets()[0].size, 1576);
        assert_eq!(overhead.added_bytes(), 0);
    }

    #[test]
    fn downloading_downlink_has_negligible_padding_overhead() {
        // Matches Table VI: the downloading data stream is already all
        // full-size packets, so padding it costs almost nothing (the paper
        // reports 0.04 %). The uplink ACK stream is excluded, as in the paper.
        let trace = SessionGenerator::new(AppKind::Downloading, 3).generate_secs(10.0);
        let downlink = Trace::from_packets(
            trace.app(),
            trace.packets_in(Direction::Downlink).copied().collect(),
        );
        let (_, overhead) = PacketPadder::new().apply(&downlink);
        assert!(overhead.percent() < 2.0, "got {}", overhead.percent());
    }

    #[test]
    fn accessors() {
        assert_eq!(PacketPadder::new().target_size(), MAX_PACKET_SIZE);
        assert_eq!(PacketPadder::to_size(1000).target_size(), 1000);
    }

    #[test]
    #[should_panic]
    fn zero_target_panics() {
        let _ = PacketPadder::to_size(0);
    }
}
