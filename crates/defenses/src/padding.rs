//! Packet padding.
//!
//! The oldest countermeasure against size-based traffic analysis: every packet
//! is padded up to a fixed target (the paper pads to the maximum observed
//! packet size of 1576 bytes). The paper's point — which Table VI reproduces —
//! is that padding is extremely expensive (121 % mean overhead) and still
//! leaves timing features intact, so the adversary barely loses accuracy.
//!
//! Padding is inherently per-packet, so [`PaddingStage`] is the primary
//! implementation: a one-in/one-out [`PacketStage`] that pads as packets
//! stream by. The batch [`PacketPadder::apply`] is a thin wrapper that drives
//! a stage over a materialised trace (byte-identical, property-tested in
//! `tests/stage_equivalence.rs`).

use crate::overhead::Overhead;
use crate::stage::{stage_trace, FlowId, PacketStage, StageOutput};
use serde::{Deserialize, Serialize};
use traffic_gen::packet::PacketRecord;
use traffic_gen::trace::Trace;
use traffic_gen::MAX_PACKET_SIZE;

/// Pads every packet of a trace to a fixed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketPadder {
    target_size: usize,
}

impl Default for PacketPadder {
    fn default() -> Self {
        PacketPadder {
            target_size: MAX_PACKET_SIZE,
        }
    }
}

impl PacketPadder {
    /// Creates a padder that pads to the paper's maximum packet size (1576 bytes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a padder with a custom target size.
    ///
    /// # Panics
    ///
    /// Panics if `target_size` is zero.
    pub fn to_size(target_size: usize) -> Self {
        assert!(target_size > 0, "padding target must be positive");
        PacketPadder { target_size }
    }

    /// The padding target in bytes.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// The streaming padding stage for this configuration.
    pub fn stage(&self) -> PaddingStage {
        PaddingStage::new(*self)
    }

    /// Pads a trace, returning the transformed trace and its overhead — a
    /// thin batch wrapper over [`PaddingStage`].
    ///
    /// Packets already larger than the target keep their size (padding never
    /// truncates); timestamps and directions are untouched, which is exactly
    /// why the timing-based attack of Table VI still works.
    pub fn apply(&self, trace: &Trace) -> (Trace, Overhead) {
        let mut stage = self.stage();
        let packets = stage_trace(&mut stage, trace)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        (Trace::from_packets(trace.app(), packets), stage.overhead())
    }
}

/// The streaming padding defense: pads each packet as it flows by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaddingStage {
    padder: PacketPadder,
    ledger: Overhead,
}

impl PaddingStage {
    /// Creates a stage padding to `padder`'s target size.
    pub fn new(padder: PacketPadder) -> Self {
        PaddingStage {
            padder,
            ledger: Overhead::default(),
        }
    }
}

impl PacketStage for PaddingStage {
    fn name(&self) -> &'static str {
        "padding"
    }

    fn on_packet(&mut self, flow: FlowId, packet: &PacketRecord, out: &mut StageOutput) {
        let padded = packet.with_size(packet.size.max(self.padder.target_size()));
        self.ledger.record(packet.size as u64, padded.size as u64);
        out.push((flow, padded));
    }

    fn overhead(&self) -> Overhead {
        self.ledger
    }

    fn reset(&mut self) {
        self.ledger = Overhead::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::ROOT_FLOW;
    use traffic_gen::app::AppKind;
    use traffic_gen::generator::SessionGenerator;
    use traffic_gen::packet::{Direction, PacketRecord};

    #[test]
    fn pads_everything_to_the_target() {
        let trace = SessionGenerator::new(AppKind::Chatting, 1).generate_secs(30.0);
        let (padded, overhead) = PacketPadder::new().apply(&trace);
        assert_eq!(padded.len(), trace.len());
        assert!(padded.packets().iter().all(|p| p.size == MAX_PACKET_SIZE));
        assert!(overhead.percent() > 100.0, "chat padding is very expensive");
        assert_eq!(overhead.original_packets, trace.len() as u64);
        assert_eq!(overhead.added_packets(), 0, "padding never adds packets");
    }

    #[test]
    fn preserves_timestamps_directions_and_label() {
        let trace = SessionGenerator::new(AppKind::Gaming, 2).generate_secs(10.0);
        let (padded, _) = PacketPadder::new().apply(&trace);
        assert_eq!(padded.app(), trace.app());
        for (a, b) in trace.packets().iter().zip(padded.packets()) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.direction, b.direction);
            assert!(b.size >= a.size);
        }
    }

    #[test]
    fn never_truncates_oversized_packets() {
        let trace = Trace::from_packets(
            Some(AppKind::Downloading),
            vec![PacketRecord::at_secs(
                0.0,
                1576,
                Direction::Downlink,
                AppKind::Downloading,
            )],
        );
        let (padded, overhead) = PacketPadder::to_size(500).apply(&trace);
        assert_eq!(padded.packets()[0].size, 1576);
        assert_eq!(overhead.added_bytes(), 0);
    }

    #[test]
    fn downloading_downlink_has_negligible_padding_overhead() {
        // Matches Table VI: the downloading data stream is already all
        // full-size packets, so padding it costs almost nothing (the paper
        // reports 0.04 %). The uplink ACK stream is excluded, as in the paper.
        let trace = SessionGenerator::new(AppKind::Downloading, 3).generate_secs(10.0);
        let downlink = Trace::from_packets(
            trace.app(),
            trace.packets_in(Direction::Downlink).copied().collect(),
        );
        let (_, overhead) = PacketPadder::new().apply(&downlink);
        assert!(overhead.percent() < 2.0, "got {}", overhead.percent());
    }

    #[test]
    fn stage_is_one_in_one_out_on_the_incoming_flow() {
        let mut stage = PacketPadder::new().stage();
        assert_eq!(stage.name(), "padding");
        let p = PacketRecord::at_secs(0.0, 100, Direction::Uplink, AppKind::Chatting);
        let mut out = StageOutput::new();
        stage.on_packet(ROOT_FLOW, &p, &mut out);
        stage.on_packet(3, &p, &mut out);
        stage.flush(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, ROOT_FLOW);
        assert_eq!(out[1].0, 3, "transforming stages preserve the flow id");
        assert!(out.iter().all(|(_, q)| q.size == MAX_PACKET_SIZE));
        assert_eq!(stage.overhead().added_bytes(), 2 * (1576 - 100));
        stage.reset();
        assert_eq!(stage.overhead(), Overhead::default());
    }

    #[test]
    fn accessors() {
        assert_eq!(PacketPadder::new().target_size(), MAX_PACKET_SIZE);
        assert_eq!(PacketPadder::to_size(1000).target_size(), 1000);
    }

    #[test]
    #[should_panic]
    fn zero_target_panics() {
        let _ = PacketPadder::to_size(0);
    }
}
