//! Defense stages as **data**: serde-buildable stage specifications.
//!
//! The scenario engine composes whole experiments from committed spec files.
//! [`DefenseStageSpec`] is this crate's end of that contract: one value names
//! a defense stage (padding, morphing, pseudonym rotation, frequency hopping)
//! plus its parameters, and [`build`](DefenseStageSpec::build) constructs the
//! streaming [`PacketStage`] from it. The seeding rules match the hand-coded
//! pipelines the bench crate used before the refactor, so a spec-built stage
//! is byte-identical per seed to its historical construction.
//!
//! Morphing is the one stage that needs context beyond its own parameters:
//! its source/target CDFs are fixed before traffic flows, estimated from
//! calibration sessions (or the materialised source trace when one exists).
//! [`StageContext`] carries exactly that: the station's application, seed,
//! calibration-session length and optional source trace.

use crate::frequency_hopping::FrequencyHopper;
use crate::morphing::{paper_morphing_target, MorphingStage, TrafficMorpher};
use crate::padding::PacketPadder;
use crate::pseudonym::PseudonymRotator;
use crate::stage::PacketStage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Error, Serialize, Value};
use traffic_gen::app::AppKind;
use traffic_gen::generator::SessionGenerator;
use traffic_gen::spec::app_from_value;
use traffic_gen::trace::Trace;
use wlan_sim::time::SimDuration;

/// The per-station context a stage spec is built in: everything a stage needs
/// that is not a parameter of the stage itself.
#[derive(Debug, Clone, Copy)]
pub struct StageContext<'a> {
    /// The application of the traffic the stage will defend (selects the
    /// paper's morphing pairing).
    pub app: AppKind,
    /// Seed for seeded stages (pseudonym draws, morphing calibration).
    pub seed: u64,
    /// Length in seconds of the generated calibration sessions the morphing
    /// stage estimates its CDFs from.
    pub calib_secs: f64,
    /// The materialised source trace, when the whole session is known up
    /// front (the batch-equivalent path); live streams pass `None` and the
    /// source CDF comes from a generated calibration session instead.
    pub source: Option<&'a Trace>,
}

impl<'a> StageContext<'a> {
    /// A context for a live stream (no materialised source trace).
    pub fn live(app: AppKind, seed: u64, calib_secs: f64) -> Self {
        StageContext {
            app,
            seed,
            calib_secs,
            source: None,
        }
    }
}

/// One defense stage, as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefenseStageSpec {
    /// Pad every packet up to `size` bytes (the paper's maximum size when
    /// `None`).
    Padding {
        /// Target size in bytes; defaults to the maximum packet size.
        size: Option<usize>,
    },
    /// Morph packet sizes toward `target`'s distribution (the paper's
    /// application pairing when `None`).
    Morphing {
        /// Explicit morphing target; defaults to the paper's pairing for the
        /// context's application.
        target: Option<AppKind>,
    },
    /// Rotate the MAC pseudonym every `period_secs` (60 s when `None`).
    Pseudonym {
        /// Rotation period in seconds; defaults to 60.
        period_secs: Option<f64>,
    },
    /// Hop channels 1/6/11 with a dwell of `dwell_ms` (500 ms when `None`).
    FrequencyHopping {
        /// Dwell time per channel in milliseconds; defaults to 500.
        dwell_ms: Option<u64>,
    },
}

impl DefenseStageSpec {
    /// The spec's tag in spec files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseStageSpec::Padding { .. } => "padding",
            DefenseStageSpec::Morphing { .. } => "morphing",
            DefenseStageSpec::Pseudonym { .. } => "pseudonym",
            DefenseStageSpec::FrequencyHopping { .. } => "frequency_hopping",
        }
    }

    /// Constructs the streaming stage this spec describes.
    pub fn build(&self, ctx: &StageContext<'_>) -> Box<dyn PacketStage> {
        match self {
            DefenseStageSpec::Padding { size } => {
                let padder = match size {
                    Some(s) => PacketPadder::to_size(*s),
                    None => PacketPadder::new(),
                };
                Box::new(padder.stage())
            }
            DefenseStageSpec::Morphing { target } => Box::new(morphing_stage(target, ctx)),
            DefenseStageSpec::Pseudonym { period_secs } => {
                let rotator = match period_secs {
                    Some(secs) => PseudonymRotator::new(SimDuration::from_secs_f64(*secs)),
                    None => PseudonymRotator::default(),
                };
                Box::new(rotator.stage_with_rng(StdRng::seed_from_u64(ctx.seed)))
            }
            DefenseStageSpec::FrequencyHopping { dwell_ms } => {
                let hopper = match dwell_ms {
                    Some(ms) => FrequencyHopper::new(
                        FrequencyHopper::default().channels().to_vec(),
                        SimDuration::from_millis(*ms),
                    ),
                    None => FrequencyHopper::default(),
                };
                Box::new(hopper.stage())
            }
        }
    }
}

/// Builds the morphing stage for the context's application: the target CDF
/// comes from a generated session of the morphing target (the paper's pairing
/// unless overridden), the source CDF from the materialised trace when one is
/// given or from a generated calibration session otherwise. Seeding matches
/// the historical hand-coded pipeline exactly.
fn morphing_stage(target: &Option<AppKind>, ctx: &StageContext<'_>) -> MorphingStage {
    let target_app = target.unwrap_or_else(|| paper_morphing_target(ctx.app));
    let target_trace =
        SessionGenerator::new(target_app, ctx.seed ^ 0xfeed).generate_secs(ctx.calib_secs);
    let morpher = TrafficMorpher::from_target_trace(target_app, &target_trace);
    match ctx.source {
        Some(trace) => morpher.stage_for_source_trace(trace),
        None => {
            let calib =
                SessionGenerator::new(ctx.app, ctx.seed ^ 0xca1b).generate_secs(ctx.calib_secs);
            morpher.stage_for_source_trace(&calib)
        }
    }
}

impl Serialize for DefenseStageSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![("stage".to_string(), Value::Str(self.name().to_string()))];
        match self {
            DefenseStageSpec::Padding { size: Some(s) } => {
                entries.push(("size".to_string(), Value::U64(*s as u64)));
            }
            DefenseStageSpec::Morphing { target: Some(t) } => {
                entries.push(("target".to_string(), t.to_value()));
            }
            DefenseStageSpec::Pseudonym {
                period_secs: Some(secs),
            } => {
                entries.push(("period_secs".to_string(), Value::F64(*secs)));
            }
            DefenseStageSpec::FrequencyHopping { dwell_ms: Some(ms) } => {
                entries.push(("dwell_ms".to_string(), Value::U64(*ms)));
            }
            _ => {}
        }
        Value::Map(entries)
    }
}

impl Deserialize for DefenseStageSpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Both the bare tag (`"padding"`) and the parameterised table form
        // (`{ stage = "padding", size = 1576 }`) are accepted.
        let (tag, map): (&str, &[(String, Value)]) = match v {
            Value::Str(s) => (s.as_str(), &[]),
            Value::Map(m) => {
                let tag = serde::value_get(m, "stage")
                    .ok_or_else(|| Error::custom("defense stage table is missing `stage`"))?;
                match tag {
                    Value::Str(s) => (s.as_str(), m.as_slice()),
                    other => {
                        return Err(Error::custom(format!(
                            "expected stage name string, found {other:?}"
                        )))
                    }
                }
            }
            other => {
                return Err(Error::custom(format!(
                    "expected defense stage name or table, found {other:?}"
                )))
            }
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, Error> {
            serde::value_get(map, key).map(f64::from_value).transpose()
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, Error> {
            serde::value_get(map, key).map(u64::from_value).transpose()
        };
        let known = |allowed: &[&str]| serde::value_deny_unknown(map, allowed, "defense stage");
        match tag {
            "padding" | "pad" => {
                known(&["stage", "size"])?;
                Ok(DefenseStageSpec::Padding {
                    size: opt_u64("size")?.map(|s| s as usize),
                })
            }
            "morphing" | "morph" => {
                known(&["stage", "target"])?;
                Ok(DefenseStageSpec::Morphing {
                    target: serde::value_get(map, "target")
                        .map(app_from_value)
                        .transpose()?,
                })
            }
            "pseudonym" => {
                known(&["stage", "period_secs"])?;
                Ok(DefenseStageSpec::Pseudonym {
                    period_secs: opt_f64("period_secs")?,
                })
            }
            "frequency_hopping" | "fh" => {
                known(&["stage", "dwell_ms"])?;
                Ok(DefenseStageSpec::FrequencyHopping {
                    dwell_ms: opt_u64("dwell_ms")?,
                })
            }
            other => Err(Error::custom(format!("unknown defense stage `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{stage_trace, StagePipeline, ROOT_FLOW};
    use traffic_gen::MAX_PACKET_SIZE;

    fn trace() -> Trace {
        SessionGenerator::new(AppKind::BitTorrent, 5).generate_secs(20.0)
    }

    #[test]
    fn padding_spec_builds_the_default_padder() {
        let trace = trace();
        let ctx = StageContext::live(AppKind::BitTorrent, 1, 20.0);
        let mut stage = DefenseStageSpec::Padding { size: None }.build(&ctx);
        let out = stage_trace(stage.as_mut(), &trace);
        assert_eq!(out.len(), trace.len());
        assert!(out.iter().all(|(_, p)| p.size == MAX_PACKET_SIZE));
        let mut sized = DefenseStageSpec::Padding { size: Some(400) }.build(&ctx);
        let out = stage_trace(sized.as_mut(), &trace);
        assert!(out.iter().all(|(_, p)| p.size >= 400.min(MAX_PACKET_SIZE)));
    }

    #[test]
    fn seeded_spec_stages_match_their_hand_coded_constructions() {
        // The contract the scenario engine rests on: a spec-built stage is
        // byte-identical per seed to the direct construction.
        let trace = trace();
        let ctx = StageContext {
            app: AppKind::BitTorrent,
            seed: 42,
            calib_secs: 20.0,
            source: Some(&trace),
        };
        // Pseudonym: same seed, same pseudonym draws, same partitions.
        let mut from_spec = DefenseStageSpec::Pseudonym { period_secs: None }.build(&ctx);
        let mut direct =
            PseudonymRotator::default().stage_with_rng(StdRng::seed_from_u64(ctx.seed));
        assert_eq!(
            stage_trace(from_spec.as_mut(), &trace),
            stage_trace(&mut direct, &trace)
        );
        // Morphing with a materialised source: same seeds, same CDFs.
        let mut from_spec = DefenseStageSpec::Morphing { target: None }.build(&ctx);
        let target_trace =
            SessionGenerator::new(AppKind::Video, ctx.seed ^ 0xfeed).generate_secs(20.0);
        let mut direct = TrafficMorpher::from_target_trace(AppKind::Video, &target_trace)
            .stage_for_source_trace(&trace);
        assert_eq!(
            stage_trace(from_spec.as_mut(), &trace),
            stage_trace(&mut direct, &trace)
        );
    }

    #[test]
    fn spec_stages_compose_in_a_pipeline() {
        let trace = trace();
        let ctx = StageContext::live(AppKind::BitTorrent, 9, 20.0);
        let mut pipeline = StagePipeline::new();
        pipeline.push_stage(DefenseStageSpec::Morphing { target: None }.build(&ctx));
        pipeline.push_stage(DefenseStageSpec::Padding { size: None }.build(&ctx));
        let mut out = Vec::new();
        pipeline.run(&mut trace.stream(), |flow, p| out.push((flow, *p)));
        assert_eq!(out.len(), trace.len());
        assert!(out
            .iter()
            .all(|(f, p)| *f == ROOT_FLOW && p.size == MAX_PACKET_SIZE));
    }

    #[test]
    fn specs_round_trip_through_serde_values() {
        let specs = [
            DefenseStageSpec::Padding { size: Some(1576) },
            DefenseStageSpec::Padding { size: None },
            DefenseStageSpec::Morphing {
                target: Some(AppKind::Video),
            },
            DefenseStageSpec::Pseudonym {
                period_secs: Some(30.0),
            },
            DefenseStageSpec::FrequencyHopping { dwell_ms: None },
        ];
        for spec in specs {
            let back = DefenseStageSpec::from_value(&spec.to_value()).expect("round trip");
            assert_eq!(back, spec);
        }
        // Bare tags parse too.
        assert_eq!(
            DefenseStageSpec::from_value(&Value::Str("fh".into())).unwrap(),
            DefenseStageSpec::FrequencyHopping { dwell_ms: None }
        );
        assert!(DefenseStageSpec::from_value(&Value::Str("quantum".into())).is_err());
    }
}
