//! Train the traffic-analysis adversary and attack original vs. reshaped traffic.
//!
//! ```text
//! cargo run --release --example adversary_eval
//! ```
//!
//! The adversary (SVM + neural network, best-of ensemble) is trained on
//! windows of original traffic from all seven applications, then evaluated
//! twice: against fresh original traffic and against the per-interface
//! sub-flows produced by Orthogonal Reshaping. The printed per-application
//! accuracies reproduce the headline result of the paper (Tables II/III):
//! reshaping roughly halves the adversary's mean accuracy.

use classifier::ensemble::{AdversaryEnsemble, EnsembleConfig};
use classifier::features::FEATURE_DIM;
use classifier::window::{build_dataset, windowed_examples, FeatureMode, DEFAULT_MIN_PACKETS};
use classifier::Dataset;
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::OrthogonalRanges;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::traffic::trace::Trace;
use traffic_reshaping::wlan::time::SimDuration;

const WINDOW_SECS: u64 = 5;

fn corpus(seed: u64, sessions: usize, secs: f64) -> Vec<Trace> {
    AppKind::ALL
        .iter()
        .flat_map(|&app| SessionGenerator::new(app, seed).generate_sessions(sessions, secs))
        .collect()
}

fn main() {
    let window = SimDuration::from_secs(WINDOW_SECS);

    // --- Train on original traffic. ------------------------------------------
    println!("training the SVM/NN adversary on original traffic …");
    let training = corpus(1, 3, 120.0);
    let train_set = build_dataset(&training, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    println!(
        "  {} training windows, {} features each",
        train_set.len(),
        train_set.dim()
    );
    let adversary = AdversaryEnsemble::train(&train_set, &EnsembleConfig::default());

    // --- Evaluate against original traffic. ----------------------------------
    let evaluation = corpus(99, 2, 120.0);
    let eval_original = build_dataset(&evaluation, window, DEFAULT_MIN_PACKETS, FeatureMode::Full);
    let (best_name, original_matrix) = adversary.evaluate_best(&eval_original);
    println!(
        "\nwithout any defense ({} windows, best classifier: {best_name}):",
        eval_original.len()
    );
    print_per_app(&original_matrix);

    // --- Evaluate against OR-reshaped traffic. --------------------------------
    let mut eval_reshaped = Dataset::new(FEATURE_DIM);
    for trace in &evaluation {
        let mut reshaper =
            Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        for sub in reshaper.reshape(trace).sub_traces() {
            for (features, label) in
                windowed_examples(sub, window, DEFAULT_MIN_PACKETS, FeatureMode::Full)
            {
                eval_reshaped.push(features, label);
            }
        }
    }
    let (best_name, reshaped_matrix) = adversary.evaluate_best(&eval_reshaped);
    println!(
        "\nwith Orthogonal Reshaping over 3 virtual interfaces ({} windows, best classifier: {best_name}):",
        eval_reshaped.len()
    );
    print_per_app(&reshaped_matrix);

    println!(
        "\nmean accuracy: {:.2}% without defense vs {:.2}% under traffic reshaping",
        original_matrix.mean_accuracy() * 100.0,
        reshaped_matrix.mean_accuracy() * 100.0
    );
}

fn print_per_app(matrix: &classifier::ConfusionMatrix) {
    for app in AppKind::ALL {
        println!(
            "  {:4} accuracy {:6.2}%   false positives {:6.2}%",
            app.abbrev(),
            matrix.class_accuracy(app.class_index()) * 100.0,
            matrix.false_positive_rate(app.class_index()) * 100.0
        );
    }
}
