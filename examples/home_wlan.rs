//! A full home-WLAN simulation with an eavesdropper.
//!
//! ```text
//! cargo run --example home_wlan
//! ```
//!
//! Two clients associate with an AP, run the reshaping configuration protocol,
//! and exchange traffic (one streams video, one runs BitTorrent). A passive
//! sniffer captures every frame on the channel. The example prints what the
//! eavesdropper sees: without reshaping there is one flow per client whose
//! features betray the application; with reshaping each client appears as
//! three unrelated devices with very different per-device features.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_reshaping::bridge;
use traffic_reshaping::reshape::config::{run_configuration, ApConfigPolicy, ConfigClient};
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::OrthogonalRanges;
use traffic_reshaping::reshape::translation::TranslationTable;
use traffic_reshaping::reshape::vif::VirtualInterfaceSet;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::wlan::ap::AccessPoint;
use traffic_reshaping::wlan::channel::{Medium, Position};
use traffic_reshaping::wlan::crypto::LinkKey;
use traffic_reshaping::wlan::mac::MacAddress;
use traffic_reshaping::wlan::phy::Channel;
use traffic_reshaping::wlan::sniffer::Sniffer;
use traffic_reshaping::wlan::station::Station;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let medium = Medium::default();

    // --- Network setup: one AP, two clients, one eavesdropper. ---------------
    let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa]);
    let mut ap = AccessPoint::new(bssid, Position::new(0.0, 0.0));
    let mut sniffer = Sniffer::new(Position::new(9.0, 2.0), bssid, Channel::CH6);

    let clients = [
        (
            MacAddress::new([0x00, 0x16, 0x6f, 0, 0, 0x01]),
            Position::new(4.0, 1.0),
            AppKind::Video,
        ),
        (
            MacAddress::new([0x00, 0x21, 0x5c, 0, 0, 0x02]),
            Position::new(6.0, 3.0),
            AppKind::BitTorrent,
        ),
    ];

    for (reshaping_on, label) in [
        (false, "WITHOUT traffic reshaping"),
        (true, "WITH traffic reshaping (OR, I = 3)"),
    ] {
        sniffer.clear();
        println!("=== {label} ===");
        for (mac, position, app) in clients {
            let mut station = Station::new(mac, position);
            let request = station.start_association(bssid);
            let _ = request; // association management frames are not data traffic
            let (_, aid) = match ap.association(mac) {
                Some(record) => (record.physical_addr, record.aid),
                None => {
                    let (_, aid) = ap.handle_association_request(mac)?;
                    (mac, aid)
                }
            };
            station.complete_association(aid);

            // Configure virtual interfaces through the encrypted protocol.
            let vifs = if reshaping_on {
                let key = LinkKey::from_seed(u64::from(mac.octets()[5]));
                let mut config = ConfigClient::new(mac, key);
                let vifs = run_configuration(
                    &mut config,
                    &mut ap,
                    &ApConfigPolicy::default(),
                    &key,
                    &mut rng,
                    3,
                )?;
                station.configure_virtual_addrs(&vifs.macs());
                vifs
            } else {
                VirtualInterfaceSet::from_macs(&[mac])
            };

            // Generate this client's traffic and put it on the air.
            let trace = SessionGenerator::new(app, u64::from(mac.octets()[5])).generate_secs(30.0);
            let mut reshaper = Reshaper::new(Box::new(OrthogonalRanges::with_interfaces(
                SizeRanges::paper_default(),
                vifs.len().min(3),
            )));
            let mut table = TranslationTable::new();
            table.install(mac, &vifs);
            let frames = bridge::trace_to_frames(&trace, &mut reshaper, &table, mac, bssid);
            for (time, frame) in frames {
                let from_ap = frame.header().src() == bssid;
                let (tx_position, tx_power) = if from_ap {
                    (ap.position(), ap.tx_power_dbm())
                } else {
                    (station.position(), station.tx_power_dbm())
                };
                sniffer.observe(
                    time,
                    &frame,
                    tx_position,
                    tx_power,
                    Channel::CH6,
                    &medium,
                    &mut rng,
                );
            }
        }

        // --- What the eavesdropper sees. -------------------------------------
        let flows = sniffer.flows_by_device();
        println!(
            "the sniffer observes {} distinct device addresses:",
            flows.len()
        );
        let mut devices: Vec<_> = flows.keys().copied().collect();
        devices.sort();
        for device in devices {
            let captures = &flows[&device];
            let bytes: usize = captures.iter().map(|c| c.size).sum();
            let mean = bytes as f64 / captures.len() as f64;
            let rssi: f64 =
                captures.iter().map(|c| c.rssi_dbm).sum::<f64>() / captures.len() as f64;
            println!(
                "  {device}: {:6} frames, mean size {:7.1} B, mean RSSI {:6.1} dBm",
                captures.len(),
                mean,
                rssi
            );
        }
        println!();
    }

    println!(
        "note how reshaping multiplies the device count and gives each virtual\n\
         device a packet-size profile unrelated to the real application."
    );
    Ok(())
}
