//! Quickstart: reshape one BitTorrent session over three virtual interfaces
//! and print the per-interface traffic features.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the library: run the configuration
//! protocol against a simulated AP, build an Orthogonal Reshaping scheduler,
//! split a traffic trace into per-interface sub-flows and look at how the
//! observable features change.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_reshaping::reshape::config::{run_configuration, ApConfigPolicy, ConfigClient};
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::OrthogonalRanges;
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::traffic::packet::Direction;
use traffic_reshaping::wlan::ap::AccessPoint;
use traffic_reshaping::wlan::channel::Position;
use traffic_reshaping::wlan::crypto::LinkKey;
use traffic_reshaping::wlan::mac::MacAddress;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2011);

    // --- 1. Set up a simulated AP and an associated client. -----------------
    let bssid = MacAddress::new([0x00, 0x1f, 0x3a, 0x00, 0x00, 0xaa]);
    let client_mac = MacAddress::new([0x00, 0x16, 0x6f, 0x00, 0x00, 0x01]);
    let mut ap = AccessPoint::new(bssid, Position::new(0.0, 0.0));
    ap.handle_association_request(client_mac)?;

    // --- 2. Run the encrypted configuration protocol (paper Fig. 2). --------
    let key = LinkKey::from_seed(42);
    let mut config_client = ConfigClient::new(client_mac, key);
    let vifs = run_configuration(
        &mut config_client,
        &mut ap,
        &ApConfigPolicy::default(),
        &key,
        &mut rng,
        3,
    )?;
    println!("configured {} virtual interfaces:", vifs.len());
    for vif in vifs.interfaces() {
        println!("  {} -> {}", vif.index(), vif.mac());
    }

    // --- 3. Generate a BitTorrent session and reshape it with OR. -----------
    let trace = SessionGenerator::new(AppKind::BitTorrent, 7).generate_secs(60.0);
    println!(
        "\noriginal BitTorrent trace: {} packets, mean size {:.1} B, mean downlink gap {:.4} s",
        trace.len(),
        trace.mean_packet_size(),
        trace.mean_interarrival_secs(Direction::Downlink)
    );

    let scheduler = OrthogonalRanges::new(SizeRanges::paper_default());
    let mut reshaper = Reshaper::new(Box::new(scheduler));
    let outcome = reshaper.reshape(&trace);

    println!(
        "\nafter Orthogonal Reshaping over {} interfaces:",
        outcome.interface_count()
    );
    for (i, sub) in outcome.sub_traces().iter().enumerate() {
        println!(
            "  interface {}: {:6} packets, mean size {:7.1} B, mean downlink gap {:.4} s",
            i + 1,
            sub.len(),
            sub.mean_packet_size(),
            sub.mean_interarrival_secs(Direction::Downlink)
        );
    }

    // --- 4. The zero-overhead invariant. -------------------------------------
    assert_eq!(outcome.total_packets(), trace.len());
    assert_eq!(outcome.total_bytes(), trace.total_bytes());
    println!(
        "\nzero overhead: {} packets / {} bytes before and after reshaping",
        trace.len(),
        trace.total_bytes()
    );
    Ok(())
}
