//! Compare traffic reshaping against the classic defenses.
//!
//! ```text
//! cargo run --release --example defense_comparison
//! ```
//!
//! For one BitTorrent evaluation trace the example reports, per defense:
//! how many observable flows the eavesdropper sees, how much byte overhead the
//! defense adds, and how far the per-flow mean packet size strays from the
//! original application's signature. It is a compact, human-readable version
//! of the paper's Table VI argument: padding and morphing pay bytes without
//! hiding timing; partition-based schemes (FH, pseudonyms, RA, RR) pay nothing
//! but leave every partition looking like the original; only OR changes the
//! per-flow features and still costs nothing.

use defenses::frequency_hopping::FrequencyHopper;
use defenses::morphing::TrafficMorpher;
use defenses::overhead::Overhead;
use defenses::padding::PacketPadder;
use defenses::pseudonym::PseudonymRotator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic_reshaping::reshape::ranges::SizeRanges;
use traffic_reshaping::reshape::reshaper::Reshaper;
use traffic_reshaping::reshape::scheduler::{OrthogonalRanges, RandomAssign, RoundRobin};
use traffic_reshaping::traffic::app::AppKind;
use traffic_reshaping::traffic::generator::SessionGenerator;
use traffic_reshaping::traffic::trace::Trace;

struct DefenseReport {
    name: &'static str,
    flows: Vec<Trace>,
    overhead: Overhead,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let original = SessionGenerator::new(AppKind::BitTorrent, 5).generate_secs(60.0);
    let gaming = SessionGenerator::new(AppKind::Gaming, 6).generate_secs(60.0);
    println!(
        "original BitTorrent trace: {} packets, {:.1} B mean packet size\n",
        original.len(),
        original.mean_packet_size()
    );

    let mut reports: Vec<DefenseReport> = Vec::new();

    // Padding and morphing: single flow, extra bytes.
    let (padded, pad_overhead) = PacketPadder::new().apply(&original);
    reports.push(DefenseReport {
        name: "padding to 1576 B",
        flows: vec![padded],
        overhead: pad_overhead,
    });
    let (morphed, morph_overhead) =
        TrafficMorpher::from_target_trace(AppKind::Gaming, &gaming).apply(&original);
    reports.push(DefenseReport {
        name: "morphing -> gaming",
        flows: vec![morphed],
        overhead: morph_overhead,
    });

    // Partitioning defenses: several flows, zero overhead.
    let fh_flows: Vec<Trace> = FrequencyHopper::default()
        .partition(&original)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    reports.push(DefenseReport {
        name: "frequency hopping",
        flows: fh_flows,
        overhead: Overhead::default(),
    });
    let pseudonym_flows: Vec<Trace> = PseudonymRotator::default()
        .partition(&original, &mut rng)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    reports.push(DefenseReport {
        name: "MAC pseudonyms",
        flows: pseudonym_flows,
        overhead: Overhead::default(),
    });

    for (name, algorithm) in [
        (
            "random assignment (RA)",
            Box::new(RandomAssign::new(3, 1))
                as Box<dyn traffic_reshaping::reshape::scheduler::ReshapeAlgorithm>,
        ),
        ("round robin (RR)", Box::new(RoundRobin::new(3))),
        (
            "orthogonal reshaping (OR)",
            Box::new(OrthogonalRanges::new(SizeRanges::paper_default())),
        ),
    ] {
        let mut reshaper = Reshaper::new(algorithm);
        let flows = reshaper.reshape(&original).sub_traces().to_vec();
        reports.push(DefenseReport {
            name,
            flows,
            overhead: Overhead::default(),
        });
    }

    println!(
        "{:<28} {:>6} {:>12} {:>28}",
        "defense", "flows", "overhead %", "per-flow mean size (B)"
    );
    for report in &reports {
        let means: Vec<String> = report
            .flows
            .iter()
            .filter(|f| !f.is_empty())
            .map(|f| format!("{:.0}", f.mean_packet_size()))
            .collect();
        println!(
            "{:<28} {:>6} {:>12.2} {:>28}",
            report.name,
            report.flows.len(),
            report.overhead.percent(),
            means.join(" / ")
        );
    }

    println!(
        "\nonly orthogonal reshaping produces flows whose mean sizes (~170 / ~790 / ~1560 B)\n\
         no longer resemble the BitTorrent signature (~{:.0} B), and it does so with zero overhead.",
        original.mean_packet_size()
    );
}
