//! Derive macros for the offline `serde` shim.
//!
//! Since the build environment has no crates.io access, this proc-macro crate
//! cannot use `syn`/`quote`. It instead walks the raw [`TokenStream`] of the
//! item, extracts the shape (struct fields / enum variants), and emits the
//! trait impls as formatted source strings parsed back into a token stream.
//!
//! Supported shapes — the ones this workspace uses:
//! * structs with named fields,
//! * tuple structs (single-field tuple structs serialize transparently,
//!   matching serde's newtype behaviour),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim's `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive the shim's `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match which {
        Which::Serialize => gen_serialize(&name, &shape),
        Which::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    // Attribute body group `[...]`.
                    if matches!(self.peek(), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Bracket)
                    {
                        self.next();
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.next();
                    // Restriction group `pub(crate)` etc.
                    if matches!(self.peek(), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.next();
                    }
                }
                _ => break,
            }
        }
    }

    /// Consume tokens of a type (or expression) until a `,` at angle-bracket
    /// depth zero, or the end of the stream. Handles `->` so the `>` of a
    /// return arrow is not miscounted as closing a generic list.
    fn skip_type(&mut self) {
        let mut depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        break;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        // A lone `>` at depth 0 would be part of `->`.
                        if depth > 0 {
                            depth -= 1;
                        }
                    }
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();

    let kw = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic item `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let field = match cur.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        cur.skip_type();
        fields.push(field);
        // Trailing comma (if any).
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.skip_attrs_and_vis();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_type();
        count += 1;
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Optional explicit discriminant `= expr`.
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            cur.next();
            cur.skip_type();
        }
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{elems}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{elems}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::value_get(map, {f:?}).ok_or_else(|| \
                         ::serde::Error::custom(concat!(\"missing field `\", {f:?}, \
                         \"` in {name}\")))?)?,"
                    )
                })
                .collect();
            format!(
                "let map = v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for struct {name}\"))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for struct {name}\"))?;\n\
                 if seq.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({elems}))"
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?,"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for variant {vn}\"))?;\n\
                                 if seq.len() != {n} {{ return Err(::serde::Error::custom(\
                                 \"wrong arity for variant {vn}\")); }}\n\
                                 Ok({name}::{vn}({elems}))\n\
                                 }}"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::value_get(map, {f:?}).ok_or_else(|| \
                                         ::serde::Error::custom(concat!(\"missing field `\", \
                                         {f:?}, \"` in variant {vn}\")))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let map = inner.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for variant {vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{\n\
                 {data_arms}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"expected enum {name}, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
