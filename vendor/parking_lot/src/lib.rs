//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`, `read()` and `write()` return guards directly. A poisoned
//! std lock (a panic while holding it) is unwrapped into the inner guard,
//! matching parking_lot's behaviour of not propagating poison.

#![forbid(unsafe_code)]

use std::sync;
pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
