//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and test
//!   functions whose arguments are `ident in strategy`,
//! * range strategies (`0u64..200`, `1usize..=1576`, float ranges),
//! * `prop::sample::select(vec)`,
//! * [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: cases are generated from a
//! fixed deterministic seed, and the first failing case is reported with its
//! case index so it can be reproduced (every run generates the same cases).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a test case.
///
/// A *rejection* (from [`prop_assume!`]) skips the case instead of failing it.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    reject: bool,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError {
            message: msg.to_string(),
            reject: false,
        }
    }

    /// Build a rejection (the case is skipped, not failed).
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError {
            message: msg.to_string(),
            reject: true,
        }
    }

    /// Whether this error is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator used by the shim's runner (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Integer types usable as range strategies.
pub trait RangeValue: Copy + fmt::Debug {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "empty strategy range {lo:?}..{hi:?}");
                let draw = (rng.next_u64() as u128) % (span as u128);
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "empty strategy range {lo:?}..{hi:?}");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
range_float!(f32, f64);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, *self.start(), *self.end(), true)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Strategies drawing from explicit collections.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use std::fmt;

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone + fmt::Debug> {
            options: Vec<T>,
        }

        /// Uniformly pick one of `options` per generated case.
        pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires a non-empty list");
            Select { options }
        }

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }
}

/// Everything tests normally import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property test, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds, mirroring
/// `proptest::prop_assume!`. Skipped cases do not count as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expand each test function in a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Deterministic per-test seed derived from the test name.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $arg;)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    if e.is_reject() {
                        continue;
                    }
                    panic!(
                        "proptest `{}` failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5, "y was {y}");
        }

        #[test]
        fn select_draws_from_options(v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&v));
            prop_assert_eq!(v, v);
        }
    }

    #[test]
    fn failing_case_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
