//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. Instead of serde's visitor-based, zero-copy data model, this
//! shim uses a single owned [`Value`] tree as the interchange format:
//!
//! * [`Serialize`] converts a Rust value into a [`Value`],
//! * [`Deserialize`] reconstructs a Rust value from a [`Value`],
//! * `serde_json` (the sibling shim) renders a [`Value`] to/from JSON text.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim) cover plain structs and enums — exactly the shapes
//! this workspace uses. Field attributes (`#[serde(...)]`) are not supported.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The interchange tree produced by [`Serialize`] and consumed by
/// [`Deserialize`]. Mirrors the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative or explicitly signed integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects. Kept as an ordered list so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up `key` in the entry list of a [`Value::Map`].
pub fn value_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Rejects map entries outside `allowed` — the strict-schema check
/// hand-written `Deserialize` impls use so a typo'd key errors instead of
/// silently falling back to a default.
pub fn value_deny_unknown(
    map: &[(String, Value)],
    allowed: &[&str],
    what: &str,
) -> Result<(), Error> {
    for (key, _) in map {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::custom(format!(
                "unknown key `{key}` in {what} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Produce the interchange representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of the interchange representation.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<T: Serialize + Ord, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; hash iteration order is arbitrary.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must render to JSON object keys, i.e. strings.
pub trait MapKey: Ord {
    /// The string form used as the JSON key.
    fn to_key(&self) -> String;
    /// Parse the key back from its string form.
    fn from_key(s: &str) -> Result<Self, Error>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|e| Error::custom(format!("invalid map key {s:?}: {e}")))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn want(v: &Value, what: &str) -> Error {
    Error::custom(format!("expected {what}, found {v:?}"))
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(want(v, "bool")),
        }
    }
}

fn as_i128(v: &Value) -> Option<i128> {
    match v {
        Value::I64(n) => Some(*n as i128),
        Value::U64(n) => Some(*n as i128),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = as_i128(v).ok_or_else(|| want(v, "integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom(
                    format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(want(v, "number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(want(v, "single-character string")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(want(v, "string")),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(want(v, "null")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| want(v, "array"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(want(v, "2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(want(v, "3-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c, d]) => Ok((
                A::from_value(a)?,
                B::from_value(b)?,
                C::from_value(c)?,
                D::from_value(d)?,
            )),
            _ => Err(want(v, "4-element array")),
        }
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| want(v, "array"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| want(v, "array"))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v.as_map().ok_or_else(|| want(v, "object"))?;
        map.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v.as_map().ok_or_else(|| want(v, "object"))?;
        map.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}
