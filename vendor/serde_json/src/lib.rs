//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the serde shim's [`serde::Value`] tree to JSON text and parses it
//! back. Only the entry points this workspace uses are provided:
//! [`to_string`], [`to_vec`], [`from_str`], [`from_slice`], plus the
//! [`Error`] type they report.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON cannot represent NaN/inf; null round-trips to NaN.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at offset {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::Str),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'n' => self.parse_literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error::new(format!("bad \\u escape: {e}")))?,
                                16,
                            )
                            .map_err(|e| Error::new(format!("bad \\u escape: {e}")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: f64 = from_str("0.1").unwrap();
        assert_eq!(v, 0.1);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
        let s: String = from_str(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndA");
    }

    #[test]
    fn round_trip_collections() {
        let data = vec![(1u64, "one".to_string()), (2, "two".to_string())];
        let json = to_string(&data).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{,}").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
