//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the `bench` crate uses
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput,
//! `Bencher::iter`) on top of plain `std::time::Instant` wall-clock timing.
//! No statistics engine, no report directory — each benchmark prints one
//! line with mean time per iteration and derived throughput.
//!
//! `cargo bench --no-run` (the CI gate) only needs this to compile; a real
//! `cargo bench` run produces quick, rough numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the work done per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording one sample per invocation of `iter`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        black_box(&out);
        self.samples.push(start.elapsed());
        self.iters_per_sample = 1;
    }
}

fn run_one<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    // Warm-up pass (not recorded).
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {name}: no samples (closure never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let mut line = format!("  {name}: {} samples, mean {mean:?}", bencher.samples.len());
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(", {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(", {:.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness flags like `--bench` that cargo passes through.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}
