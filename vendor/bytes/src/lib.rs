//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the method subset this workspace uses for frame encoding/decoding.
//! Network byte order (big-endian) throughout, matching the real crate.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]` (which advances
/// the slice itself, as in the real crate) and [`Bytes`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable byte slice.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copy exactly `dest.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(
            self.remaining() >= dest.len(),
            "buffer underflow: want {}, have {}",
            dest.len(),
            self.remaining()
        );
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Copy the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(
            self.remaining() >= len,
            "buffer underflow: want {len}, have {}",
            self.remaining()
        );
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEADBEEF);
        let tail = cursor.copy_to_bytes(3);
        assert_eq!(&tail[..], b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }
}
