//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no crates.io access, so this shim provides the
//! subset of `rand` the workspace uses: [`RngCore`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`] with `seed_from_u64`,
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`).
//!
//! Everything is deterministic given a seed — exactly what a reproduction
//! harness wants. The statistical quality of xoshiro256++ matches what the
//! simulations here need; it is *not* cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (the shim's version of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                // Multiply-shift bounded draw; the tiny modulo bias of a
                // 64-bit draw over simulation-sized spans is irrelevant here.
                let draw = (rng.next_u64() as u128) % (span as u128);
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R, lo: Self, hi: Self, inclusive: bool,
            ) -> Self {
                let _ = inclusive; // [lo, hi) and [lo, hi] coincide for floats
                assert!(lo < hi || (inclusive && lo == hi),
                    "cannot sample empty range {lo}..{hi}");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A half-open or inclusive range accepted by [`Rng::gen_range`].
pub struct AnyRange<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T> From<Range<T>> for AnyRange<T> {
    fn from(r: Range<T>) -> Self {
        AnyRange {
            lo: r.start,
            hi: r.end,
            inclusive: false,
        }
    }
}

impl<T: Copy> From<RangeInclusive<T>> for AnyRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        AnyRange {
            lo: *r.start(),
            hi: *r.end(),
            inclusive: true,
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, R: Into<AnyRange<T>>>(&mut self, range: R) -> T {
        let r = range.into();
        T::sample_range(self, r.lo, r.hi, r.inclusive)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample_standard(self) < p
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

/// Types fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrite `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would be a fixed point; reseed via SplitMix64.
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    /// Alias: the shim's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn crate::RngCore = &mut rng;
        let f = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&f));
    }
}
