//! # traffic-reshaping
//!
//! Umbrella crate for the reproduction of *"Defending Against Traffic Analysis
//! in Wireless Networks Through Traffic Reshaping"* (Zhang, He, Liu — ICDCS
//! 2011).
//!
//! The workspace is split into focused crates; this facade re-exports them and
//! adds the small amount of glue ([`bridge`]) needed to move data between the
//! WLAN simulator, the traffic generators, the reshaping engine and the
//! traffic-analysis adversary.
//!
//! * [`wlan`] — 802.11-style MAC/PHY simulator (stations, AP, sniffer).
//! * [`traffic`] — synthetic application traffic and trace handling.
//! * [`analysis`] — the adversary: features, SVM/NN classifiers, metrics.
//! * [`defense`] — baseline defenses: padding, morphing, pseudonyms, FH.
//! * [`reshape`] — the paper's contribution: virtual MAC interfaces and
//!   reshaping algorithms (RA, RR, OR).
//!
//! # Quickstart
//!
//! ```rust
//! use traffic_reshaping::reshape::scheduler::{OrthogonalRanges, ReshapeAlgorithm};
//! use traffic_reshaping::reshape::ranges::SizeRanges;
//! use traffic_reshaping::traffic::app::AppKind;
//! use traffic_reshaping::traffic::generator::SessionGenerator;
//!
//! // Generate a BitTorrent-like trace and reshape it over three virtual interfaces.
//! let trace = SessionGenerator::new(AppKind::BitTorrent, 42).generate_secs(10.0);
//! let ranges = SizeRanges::paper_default();
//! let mut algorithm = OrthogonalRanges::new(ranges);
//! let first = &trace.packets()[0];
//! let interface = algorithm.assign(first);
//! assert!(interface.index() < 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use classifier as analysis;
pub use defenses as defense;
pub use reshape_core as reshape;
pub use traffic_gen as traffic;
pub use wlan_sim as wlan;

pub mod bridge;
