//! Glue between the WLAN simulator, the reshaping engine and the adversary.
//!
//! The member crates are deliberately decoupled: `wlan-sim` knows about frames
//! and RSSI, `traffic-gen` about packet streams, `classifier` about feature
//! vectors. The bridge converts between those views so the examples and
//! integration tests can run a *complete* pipeline: application traffic →
//! reshaping → frames on the air → sniffer captures → classifier input.

use crate::reshape::reshaper::Reshaper;
use crate::reshape::translation::TranslationTable;
use crate::reshape::vif::VirtualInterfaceSet;
use crate::traffic::app::AppKind;
use crate::traffic::packet::{Direction, PacketRecord};
use crate::traffic::trace::Trace;
use crate::wlan::frame::{Frame, MAC_OVERHEAD_BYTES};
use crate::wlan::mac::MacAddress;
use crate::wlan::sniffer::CapturedFrame;

/// Converts one packet record into an on-air frame between a station (or one
/// of its virtual interfaces) and the AP.
///
/// Downlink packets become `AP -> station_addr` frames, uplink packets become
/// `station_addr -> AP` frames. The frame's on-air size equals the packet's
/// recorded size (payload is zero-filled; only its length matters).
pub fn packet_to_frame(packet: &PacketRecord, station_addr: MacAddress, ap: MacAddress) -> Frame {
    let (src, dst) = match packet.direction {
        Direction::Downlink => (ap, station_addr),
        Direction::Uplink => (station_addr, ap),
    };
    let air_size = packet.size.max(MAC_OVERHEAD_BYTES);
    Frame::data_of_air_size(src, dst, air_size)
}

/// Converts a whole trace into frames, dispatching every packet through the
/// reshaping engine so each frame carries the virtual MAC address chosen by
/// the scheduler. Returns `(time, frame)` pairs in transmission order.
///
/// The translation table is consulted so the produced frames are exactly what
/// the paper's Fig. 3 data path would put on the air.
pub fn trace_to_frames(
    trace: &Trace,
    reshaper: &mut Reshaper,
    vifs: &VirtualInterfaceSet,
    physical: MacAddress,
    ap: MacAddress,
) -> Vec<(crate::wlan::time::SimTime, Frame)> {
    let mut table = TranslationTable::new();
    table.install(physical, vifs);
    let outcome = reshaper.reshape(trace);
    outcome
        .assignments()
        .iter()
        .map(|(packet, vif)| {
            let addr = vifs.get(*vif).map(|v| v.mac()).unwrap_or(physical);
            (packet.time, packet_to_frame(packet, addr, ap))
        })
        .collect()
}

/// Converts sniffer captures back into a labelled trace for one observed
/// device address (the adversary's per-"user" flow reassembly).
///
/// `label` is the ground-truth application used when scoring the classifier;
/// a real adversary obviously does not know it.
pub fn captures_to_trace(
    captures: &[CapturedFrame],
    device: MacAddress,
    label: Option<AppKind>,
) -> Trace {
    let packets = captures
        .iter()
        .filter(|c| c.is_data && (c.src == device || c.dst == device))
        .map(|c| {
            let direction = if c.dst == device {
                Direction::Downlink
            } else {
                Direction::Uplink
            };
            PacketRecord::new(
                c.time,
                c.size,
                direction,
                label.unwrap_or(AppKind::Browsing),
            )
        })
        .collect();
    let mut trace = Trace::from_packets(label, packets);
    if label.is_none() {
        trace.set_app(None);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reshape::ranges::SizeRanges;
    use crate::reshape::scheduler::OrthogonalRanges;
    use crate::traffic::generator::SessionGenerator;
    use crate::wlan::phy::Channel;
    use crate::wlan::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn station() -> MacAddress {
        MacAddress::new([0x00, 0x11, 0x22, 0, 0, 1])
    }

    fn ap() -> MacAddress {
        MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
    }

    #[test]
    fn packet_to_frame_maps_directions() {
        let down = PacketRecord::at_secs(0.0, 1400, Direction::Downlink, AppKind::Video);
        let up = PacketRecord::at_secs(0.1, 200, Direction::Uplink, AppKind::Video);
        let f_down = packet_to_frame(&down, station(), ap());
        assert_eq!(f_down.header().src(), ap());
        assert_eq!(f_down.header().dst(), station());
        assert_eq!(f_down.air_size(), 1400);
        let f_up = packet_to_frame(&up, station(), ap());
        assert_eq!(f_up.header().src(), station());
        assert_eq!(f_up.header().dst(), ap());
        assert_eq!(f_up.air_size(), 200);
        // Tiny packets are clamped to the MAC overhead.
        let tiny = PacketRecord::at_secs(0.2, 10, Direction::Uplink, AppKind::Video);
        assert_eq!(
            packet_to_frame(&tiny, station(), ap()).air_size(),
            MAC_OVERHEAD_BYTES
        );
    }

    #[test]
    fn trace_to_frames_uses_virtual_addresses() {
        let mut rng = StdRng::seed_from_u64(3);
        let macs: Vec<MacAddress> = (0..3)
            .map(|_| MacAddress::random_locally_administered(&mut rng))
            .collect();
        let vifs = VirtualInterfaceSet::from_macs(&macs);
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(5.0);
        let mut reshaper =
            Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let frames = trace_to_frames(&trace, &mut reshaper, &vifs, station(), ap());
        assert_eq!(frames.len(), trace.len());
        // Every frame involves the AP and one of the virtual addresses.
        for (_, frame) in &frames {
            let other = if frame.header().src() == ap() {
                frame.header().dst()
            } else {
                frame.header().src()
            };
            assert!(macs.contains(&other), "unexpected device address {other}");
        }
        // All three virtual addresses appear (BT covers all three size ranges).
        for mac in &macs {
            assert!(frames
                .iter()
                .any(|(_, f)| f.header().src() == *mac || f.header().dst() == *mac));
        }
    }

    #[test]
    fn captures_round_trip_back_to_traces() {
        let captures: Vec<CapturedFrame> = vec![
            CapturedFrame {
                time: SimTime::from_millis(0),
                size: 1500,
                src: ap(),
                dst: station(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -50.0,
                is_data: true,
                from_ap: true,
            },
            CapturedFrame {
                time: SimTime::from_millis(10),
                size: 200,
                src: station(),
                dst: ap(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -48.0,
                is_data: true,
                from_ap: false,
            },
            // Management frame: ignored.
            CapturedFrame {
                time: SimTime::from_millis(20),
                size: 60,
                src: station(),
                dst: ap(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -48.0,
                is_data: false,
                from_ap: false,
            },
        ];
        let trace = captures_to_trace(&captures, station(), Some(AppKind::Video));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.app(), Some(AppKind::Video));
        assert_eq!(trace.packets()[0].direction, Direction::Downlink);
        assert_eq!(trace.packets()[1].direction, Direction::Uplink);
        let unlabelled = captures_to_trace(&captures, station(), None);
        assert_eq!(unlabelled.app(), None);
    }
}
