//! Glue between the WLAN simulator, the reshaping engine and the adversary.
//!
//! The member crates are deliberately decoupled: `wlan-sim` knows about frames
//! and RSSI, `traffic-gen` about packet streams, `classifier` about feature
//! vectors. The bridge converts between those views so the examples and
//! integration tests can run a *complete* pipeline: application traffic →
//! reshaping → frames on the air → sniffer captures → classifier input.
//!
//! Two data paths are provided:
//!
//! * the batch [`trace_to_frames`], which converts a whole materialised
//!   [`Trace`] at once, and
//! * the streaming [`FrameStream`] (built by [`stream_frames`]), the online
//!   Fig. 3 path: packets are pulled from any
//!   [`PacketSource`], dispatched through the
//!   [`OnlineReshaper`] and emitted as on-air frames one at a time — memory
//!   stays O(1) even for unbounded sessions.
//!
//! The streaming adapter accepts a defense [`StagePipeline`] in front of
//! the reshaper ([`stream_frames_staged`]): packets are padded, morphed or
//! otherwise transformed stage by stage before the engine dispatches them, so
//! composed defense∘reshape scenarios reach the air with no extra plumbing.
//! On-air identity always comes from the reshaper's vif → MAC translation:
//! upstream sub-flow ids are deliberately collapsed at the engine, so use
//! transforming stages here — a partitioning stage (pseudonyms, FH) changes
//! nothing on the air and belongs in the evaluation pipeline instead.
//!
//! Both paths resolve a packet's virtual MAC through the installed
//! [`TranslationTable`], exactly as the paper's data path does, and produce
//! byte-identical frames for the same packets, algorithm and seed.
//!
//! On the receive side the loop closes at the sniffer: [`captures_to_trace`]
//! reassembles a materialised per-device trace for the batch adversary, and
//! [`captures_into_sink`] feeds the same frames straight into a live
//! [`AdversarySink`] — the streaming adversary windows, scores and learns as
//! frames are captured, so the whole
//! generator → defense → air → sniffer → classifier chain runs without one
//! materialised trace.

use crate::analysis::online::AdversarySink;
use crate::defense::stage::{StagePipeline, STAGE_BATCH};
use crate::reshape::online::OnlineReshaper;
use crate::reshape::reshaper::Reshaper;
use crate::reshape::translation::TranslationTable;
use crate::reshape::vif::VifIndex;
use crate::traffic::app::AppKind;
use crate::traffic::packet::{Direction, PacketRecord};
use crate::traffic::stream::PacketSource;
use crate::traffic::trace::Trace;
use crate::wlan::channel::{Medium, Position};
use crate::wlan::frame::{Frame, MAC_OVERHEAD_BYTES};
use crate::wlan::mac::MacAddress;
use crate::wlan::phy::Channel;
use crate::wlan::sniffer::{CapturedFrame, Sniffer};
use crate::wlan::time::SimTime;
use rand::Rng;

/// Converts one packet record into an on-air frame between a station (or one
/// of its virtual interfaces) and the AP.
///
/// Downlink packets become `AP -> station_addr` frames, uplink packets become
/// `station_addr -> AP` frames. The frame's on-air size equals the packet's
/// recorded size (payload is zero-filled; only its length matters).
pub fn packet_to_frame(packet: &PacketRecord, station_addr: MacAddress, ap: MacAddress) -> Frame {
    let (src, dst) = match packet.direction {
        Direction::Downlink => (ap, station_addr),
        Direction::Uplink => (station_addr, ap),
    };
    let air_size = packet.size.max(MAC_OVERHEAD_BYTES);
    Frame::data_of_air_size(src, dst, air_size)
}

/// Resolves the on-air address for a packet assigned to `vif`: the station's
/// virtual MAC from the translation table, falling back to the physical
/// address when no mapping is installed (reshaping disabled).
fn on_air_address(table: &TranslationTable, physical: MacAddress, vif: VifIndex) -> MacAddress {
    table.virtual_of(physical, vif).unwrap_or(physical)
}

/// Converts a whole trace into frames, dispatching every packet through the
/// reshaping engine so each frame carries the virtual MAC address chosen by
/// the scheduler. Returns `(time, frame)` pairs in transmission order.
///
/// The installed [`TranslationTable`] is the single source of vif→MAC truth —
/// the produced frames are exactly what the paper's Fig. 3 data path would
/// put on the air. Stations without an installed mapping transmit under their
/// physical address.
pub fn trace_to_frames(
    trace: &Trace,
    reshaper: &mut Reshaper,
    table: &TranslationTable,
    physical: MacAddress,
    ap: MacAddress,
) -> Vec<(SimTime, Frame)> {
    let outcome = reshaper.reshape(trace);
    trace
        .packets()
        .iter()
        .zip(outcome.assignments())
        .map(|(packet, &(_, vif))| {
            let addr = on_air_address(table, physical, vif);
            (packet.time, packet_to_frame(packet, addr, ap))
        })
        .collect()
}

/// The streaming packets → stages → reshaper → frames adapter.
///
/// Pulls packets from a [`PacketSource`], runs each through an optional
/// defense [`StagePipeline`] (identity by default), assigns every surviving
/// packet to a virtual interface through the [`OnlineReshaper`] and yields
/// the on-air frame immediately: at most one source packet in flight at a
/// time, no trace materialisation. Create one with [`stream_frames`] or
/// [`stream_frames_staged`].
#[derive(Debug)]
pub struct FrameStream<'a, S: PacketSource> {
    source: S,
    stages: StagePipeline,
    /// Staged packets not yet dispatched (a stage may emit several packets,
    /// or none, per source packet).
    pending: std::collections::VecDeque<PacketRecord>,
    /// Source-packet buffer [`next_chunk`](FrameStream::next_chunk) stages
    /// in one [`StagePipeline::process_batch`] call.
    batch: Vec<PacketRecord>,
    flushed: bool,
    reshaper: &'a mut OnlineReshaper,
    table: &'a TranslationTable,
    physical: MacAddress,
    ap: MacAddress,
}

impl<S: PacketSource> FrameStream<'_, S> {
    /// Packets emitted so far (delegates to the engine's running counter).
    pub fn packets_emitted(&self) -> u64 {
        self.reshaper.packets_seen()
    }

    /// The defense pipeline in front of the reshaper (its overhead ledger
    /// reports what the stages cost so far).
    pub fn stages(&self) -> &StagePipeline {
        &self.stages
    }

    /// Fills `out` (cleared first) with the next chunk of on-air frames —
    /// the sliced twin of the per-frame `Iterator` path: up to
    /// [`STAGE_BATCH`] source packets are staged in one
    /// [`StagePipeline::process_batch`] call, then every staged packet is
    /// dispatched through the reshaper and converted in exactly the order
    /// the per-frame path would have produced (`process_batch` is pinned
    /// byte-identical to per-packet `process`). Returns the number of frames
    /// appended; `0` means the stream is exhausted. Chunked and per-frame
    /// pulls may interleave freely — both drain the same staged queue.
    pub fn next_chunk(&mut self, out: &mut Vec<(SimTime, Frame)>) -> usize {
        out.clear();
        while self.pending.is_empty() && !self.flushed {
            self.batch.clear();
            while self.batch.len() < STAGE_BATCH {
                match self.source.next_packet() {
                    Some(packet) => self.batch.push(packet),
                    None => {
                        self.flushed = true;
                        break;
                    }
                }
            }
            let pending = &mut self.pending;
            self.stages
                .process_batch(&self.batch, |_, staged| pending.push_back(*staged));
            if self.flushed {
                self.stages.finish(|_, staged| pending.push_back(*staged));
            }
        }
        for packet in self.pending.drain(..) {
            let vif = self.reshaper.assign(&packet);
            let addr = on_air_address(self.table, self.physical, vif);
            out.push((packet.time, packet_to_frame(&packet, addr, self.ap)));
        }
        out.len()
    }
}

impl<S: PacketSource> Iterator for FrameStream<'_, S> {
    type Item = (SimTime, Frame);

    fn next(&mut self) -> Option<(SimTime, Frame)> {
        loop {
            if let Some(packet) = self.pending.pop_front() {
                let vif = self.reshaper.assign(&packet);
                let addr = on_air_address(self.table, self.physical, vif);
                return Some((packet.time, packet_to_frame(&packet, addr, self.ap)));
            }
            if self.flushed {
                return None;
            }
            let pending = &mut self.pending;
            match self.source.next_packet() {
                Some(packet) => self
                    .stages
                    .process(&packet, |_, staged| pending.push_back(*staged)),
                None => {
                    self.flushed = true;
                    self.stages.finish(|_, staged| pending.push_back(*staged));
                }
            }
        }
    }
}

/// Builds the streaming packets → reshaper → frames pipeline over any packet
/// source. The reshaper is **not** reset, so one engine can span multiple
/// sources when a session is delivered in segments.
pub fn stream_frames<'a, S: PacketSource>(
    source: S,
    reshaper: &'a mut OnlineReshaper,
    table: &'a TranslationTable,
    physical: MacAddress,
    ap: MacAddress,
) -> FrameStream<'a, S> {
    stream_frames_staged(source, StagePipeline::new(), reshaper, table, physical, ap)
}

/// Builds the streaming pipeline with a defense [`StagePipeline`] spliced in
/// before the reshaper: packets → stages → reshaper → frames. The stages run
/// per packet, so the composition streams in O(1) memory like the plain path.
///
/// The stages should be **transforming** (padding, morphing, a nested
/// pipeline of both): every staged packet is dispatched through the reshaper,
/// whose vif → MAC translation alone decides the on-air address, so any
/// sub-flow partitioning an upstream stage performs is collapsed here.
pub fn stream_frames_staged<'a, S: PacketSource>(
    source: S,
    stages: StagePipeline,
    reshaper: &'a mut OnlineReshaper,
    table: &'a TranslationTable,
    physical: MacAddress,
    ap: MacAddress,
) -> FrameStream<'a, S> {
    FrameStream {
        source,
        stages,
        pending: std::collections::VecDeque::new(),
        batch: Vec::new(),
        flushed: false,
        reshaper,
        table,
        physical,
        ap,
    }
}

/// Feeds a frame stream into a `wlan-sim` sniffer through the PHY model:
/// every frame is transmitted from the AP's or the station's position
/// (depending on direction) and captured subject to channel and signal
/// conditions. Returns the number of frames the sniffer actually captured.
#[allow(clippy::too_many_arguments)]
pub fn inject_frames<I, R>(
    frames: I,
    sniffer: &mut Sniffer,
    ap: MacAddress,
    ap_view: (Position, f64),
    station_view: (Position, f64),
    channel: Channel,
    medium: &Medium,
    rng: &mut R,
) -> usize
where
    I: IntoIterator<Item = (SimTime, Frame)>,
    R: Rng + ?Sized,
{
    let mut captured = 0;
    for (time, frame) in frames {
        let (position, power_dbm) = if frame.header().src() == ap {
            ap_view
        } else {
            station_view
        };
        if sniffer.observe(time, &frame, position, power_dbm, channel, medium, rng) {
            captured += 1;
        }
    }
    captured
}

/// Feeds sniffer captures for one observed device straight into a live
/// [`AdversarySink`]: every data frame involving `device` is converted back
/// into a packet record (the adversary's per-"user" flow reassembly) and
/// pushed into the sink's windowers, so the online adversary tests-then-trains
/// the moment each eavesdropping window closes — the paper's live
/// eavesdropper, end to end on sniffed frames instead of materialised traces.
///
/// All of a device's frames form one sub-flow (the sniffer already separates
/// devices by address; feed each virtual MAC its own sink to mirror the
/// per-interface view). `label` is the ground-truth application used for
/// scoring; a real adversary obviously does not know it. Returns the number
/// of frames absorbed. The caller finishes the sink at end of capture
/// (`sink.finish()`).
pub fn captures_into_sink(
    captures: &[CapturedFrame],
    device: MacAddress,
    label: AppKind,
    sink: &mut AdversarySink,
) -> usize {
    // All of the device's packets form one sub-flow, so the reassembled
    // stream rides the sink's single-run sliced entry in blocks — one
    // windower dispatch per block, bit-identical to pushing each packet.
    const SINK_CHUNK: usize = 256;
    let mut absorbed = 0;
    let mut run: Vec<PacketRecord> = Vec::with_capacity(SINK_CHUNK);
    for packet in device_packets(captures, device, label) {
        run.push(packet);
        if run.len() == SINK_CHUNK {
            sink.push_run(0, &run);
            absorbed += run.len();
            run.clear();
        }
    }
    sink.push_run(0, &run);
    absorbed += run.len();
    absorbed
}

/// The shared receive-side reassembly rule: the data frames captured for
/// `device`, as packet records whose direction is relative to the device.
/// Both [`captures_to_trace`] and [`captures_into_sink`] are built on this,
/// so the batch and live receive paths can never diverge.
fn device_packets(
    captures: &[CapturedFrame],
    device: MacAddress,
    label: AppKind,
) -> impl Iterator<Item = PacketRecord> + '_ {
    captures
        .iter()
        .filter(move |c| c.is_data && (c.src == device || c.dst == device))
        .map(move |c| {
            let direction = if c.dst == device {
                Direction::Downlink
            } else {
                Direction::Uplink
            };
            PacketRecord::new(c.time, c.size, direction, label)
        })
}

/// Converts sniffer captures back into a labelled trace for one observed
/// device address (the adversary's per-"user" flow reassembly).
///
/// `label` is the ground-truth application used when scoring the classifier;
/// a real adversary obviously does not know it.
pub fn captures_to_trace(
    captures: &[CapturedFrame],
    device: MacAddress,
    label: Option<AppKind>,
) -> Trace {
    let packets = device_packets(captures, device, label.unwrap_or(AppKind::Browsing)).collect();
    let mut trace = Trace::from_packets(label, packets);
    if label.is_none() {
        trace.set_app(None);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reshape::ranges::SizeRanges;
    use crate::reshape::scheduler::OrthogonalRanges;
    use crate::reshape::vif::VirtualInterfaceSet;
    use crate::traffic::generator::SessionGenerator;
    use crate::traffic::stream::StreamingSession;
    use crate::wlan::channel::PathLossModel;
    use crate::wlan::time::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn station() -> MacAddress {
        MacAddress::new([0x00, 0x11, 0x22, 0, 0, 1])
    }

    fn ap() -> MacAddress {
        MacAddress::new([0x00, 0x1f, 0x3a, 0, 0, 0xaa])
    }

    fn installed_vifs(seed: u64, n: usize) -> (VirtualInterfaceSet, TranslationTable) {
        let mut rng = StdRng::seed_from_u64(seed);
        let macs: Vec<MacAddress> = (0..n)
            .map(|_| MacAddress::random_locally_administered(&mut rng))
            .collect();
        let vifs = VirtualInterfaceSet::from_macs(&macs);
        let mut table = TranslationTable::new();
        table.install(station(), &vifs);
        (vifs, table)
    }

    fn or_reshaper() -> Reshaper {
        Reshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())))
    }

    #[test]
    fn packet_to_frame_maps_directions() {
        let down = PacketRecord::at_secs(0.0, 1400, Direction::Downlink, AppKind::Video);
        let up = PacketRecord::at_secs(0.1, 200, Direction::Uplink, AppKind::Video);
        let f_down = packet_to_frame(&down, station(), ap());
        assert_eq!(f_down.header().src(), ap());
        assert_eq!(f_down.header().dst(), station());
        assert_eq!(f_down.air_size(), 1400);
        let f_up = packet_to_frame(&up, station(), ap());
        assert_eq!(f_up.header().src(), station());
        assert_eq!(f_up.header().dst(), ap());
        assert_eq!(f_up.air_size(), 200);
        // Tiny packets are clamped to the MAC overhead.
        let tiny = PacketRecord::at_secs(0.2, 10, Direction::Uplink, AppKind::Video);
        assert_eq!(
            packet_to_frame(&tiny, station(), ap()).air_size(),
            MAC_OVERHEAD_BYTES
        );
    }

    #[test]
    fn trace_to_frames_uses_virtual_addresses() {
        let (vifs, table) = installed_vifs(3, 3);
        let macs = vifs.macs();
        let trace = SessionGenerator::new(AppKind::BitTorrent, 1).generate_secs(5.0);
        let mut reshaper = or_reshaper();
        let frames = trace_to_frames(&trace, &mut reshaper, &table, station(), ap());
        assert_eq!(frames.len(), trace.len());
        // Every frame involves the AP and one of the virtual addresses.
        for (_, frame) in &frames {
            let other = if frame.header().src() == ap() {
                frame.header().dst()
            } else {
                frame.header().src()
            };
            assert!(macs.contains(&other), "unexpected device address {other}");
        }
        // All three virtual addresses appear (BT covers all three size ranges).
        for mac in &macs {
            assert!(frames
                .iter()
                .any(|(_, f)| f.header().src() == *mac || f.header().dst() == *mac));
        }
    }

    #[test]
    fn translation_table_is_the_source_of_vif_addresses() {
        // Regression test for the dead-table bug: vif→MAC resolution must go
        // through the *installed* translation table. Each frame's device
        // address has to be exactly `table.virtual_of(physical, vif)` for the
        // vif the scheduler picked — recomputed here with an identical,
        // independently-built scheduler.
        let (_, table) = installed_vifs(7, 3);
        let trace = SessionGenerator::new(AppKind::BitTorrent, 2).generate_secs(5.0);
        let frames = trace_to_frames(&trace, &mut or_reshaper(), &table, station(), ap());
        let outcome = or_reshaper().reshape(&trace);
        assert_eq!(frames.len(), outcome.assignments().len());
        for ((_, frame), &(index, vif)) in frames.iter().zip(outcome.assignments()) {
            let expected = table
                .virtual_of(station(), vif)
                .expect("table maps every scheduled vif");
            let device = if frame.header().src() == ap() {
                frame.header().dst()
            } else {
                frame.header().src()
            };
            assert_eq!(
                device, expected,
                "packet {index}: frame must carry the table's address for {vif}"
            );
        }
    }

    #[test]
    fn uninstalled_station_falls_back_to_its_physical_address() {
        // No mapping installed: the station transmits under its physical MAC.
        let table = TranslationTable::new();
        let trace = SessionGenerator::new(AppKind::Video, 4).generate_secs(3.0);
        let frames = trace_to_frames(&trace, &mut or_reshaper(), &table, station(), ap());
        for (_, frame) in &frames {
            let device = if frame.header().src() == ap() {
                frame.header().dst()
            } else {
                frame.header().src()
            };
            assert_eq!(device, station());
        }
    }

    #[test]
    fn streaming_frames_are_byte_identical_to_batch() {
        // The tentpole equivalence at the bridge layer: same packets, same
        // algorithm, same seed -> identical frames from both data paths.
        let (_, table) = installed_vifs(5, 3);
        let trace = SessionGenerator::new(AppKind::BitTorrent, 9).generate_secs(10.0);
        let batch = trace_to_frames(&trace, &mut or_reshaper(), &table, station(), ap());
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let streamed: Vec<(SimTime, Frame)> =
            stream_frames(trace.stream(), &mut online, &table, station(), ap()).collect();
        assert_eq!(batch, streamed);
        assert_eq!(online.packets_seen() as usize, trace.len());
    }

    #[test]
    fn staged_frame_stream_applies_defenses_before_reshaping() {
        // Padding stage ∘ OR through the frames adapter: every frame leaves
        // the air at the padded size, and the reshaper only ever saw
        // full-size packets (they all land on the large-size interface).
        use crate::defense::PacketPadder;
        let (_, table) = installed_vifs(13, 3);
        let trace = SessionGenerator::new(AppKind::BitTorrent, 17).generate_secs(5.0);
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let stages = StagePipeline::new().with_stage(PacketPadder::new().stage());
        let frames: Vec<(SimTime, Frame)> =
            stream_frames_staged(trace.stream(), stages, &mut online, &table, station(), ap())
                .collect();
        assert_eq!(frames.len(), trace.len());
        assert!(frames.iter().all(|(_, f)| f.air_size() == 1576));
        let large = SizeRanges::paper_default().range_of(1576);
        assert_eq!(
            online.packets_on(crate::reshape::vif::VifIndex::new(large)),
            trace.len() as u64,
            "padded packets all belong to the large-size interface"
        );
        // The staged and plain adapters agree when the pipeline is empty.
        let mut plain =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let unstaged: Vec<(SimTime, Frame)> =
            stream_frames(trace.stream(), &mut plain, &table, station(), ap()).collect();
        let mut identity =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let staged_identity: Vec<(SimTime, Frame)> = stream_frames_staged(
            trace.stream(),
            StagePipeline::new(),
            &mut identity,
            &table,
            station(),
            ap(),
        )
        .collect();
        assert_eq!(unstaged, staged_identity);
    }

    #[test]
    fn chunked_frame_stream_is_byte_identical_to_per_frame() {
        // next_chunk == next, frame for frame, with and without stages in
        // front — the bridge-layer half of the sliced-windowing equivalence.
        use crate::defense::PacketPadder;
        let (_, table) = installed_vifs(19, 3);
        let trace = SessionGenerator::new(AppKind::BitTorrent, 23).generate_secs(10.0);
        for staged in [false, true] {
            let stages = || {
                if staged {
                    StagePipeline::new().with_stage(PacketPadder::new().stage())
                } else {
                    StagePipeline::new()
                }
            };
            let mut per_frame_engine =
                OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
            let per_frame: Vec<(SimTime, Frame)> = stream_frames_staged(
                trace.stream(),
                stages(),
                &mut per_frame_engine,
                &table,
                station(),
                ap(),
            )
            .collect();

            let mut chunked_engine =
                OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
            let mut stream = stream_frames_staged(
                trace.stream(),
                stages(),
                &mut chunked_engine,
                &table,
                station(),
                ap(),
            );
            let mut chunked = Vec::new();
            let mut chunk = Vec::new();
            while stream.next_chunk(&mut chunk) > 0 {
                chunked.append(&mut chunk);
            }
            assert_eq!(per_frame, chunked, "staged={staged}");
            assert_eq!(
                per_frame_engine.packets_seen(),
                chunked_engine.packets_seen()
            );
        }
    }

    #[test]
    fn sliced_sink_feed_matches_per_packet_push() {
        // captures_into_sink now rides AdversarySink::push_run; the live
        // adversary must end in exactly the state a per-packet feed reaches.
        use crate::analysis::ensemble::EnsembleConfig;
        use crate::analysis::features::FEATURE_DIM;
        use crate::analysis::online::{OnlineAdversary, PrequentialEvaluator};
        use crate::analysis::stream::FlowWindowers;
        use crate::analysis::window::{FeatureMode, DEFAULT_MIN_PACKETS};
        use crate::wlan::channel::PathLossModel;
        use crate::wlan::time::SimDuration;

        let table = TranslationTable::new();
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let session = StreamingSession::bounded(AppKind::Video, 39, 45.0);
        let frames = stream_frames(session, &mut online, &table, station(), ap());
        let medium = Medium::new(PathLossModel::deterministic(40.0, 2.0), -96.0);
        let mut sniffer = Sniffer::new(Position::new(4.0, 4.0), ap(), Channel::CH6);
        let mut rng = StdRng::seed_from_u64(13);
        inject_frames(
            frames,
            &mut sniffer,
            ap(),
            (Position::new(0.0, 0.0), 20.0),
            (Position::new(3.0, 0.0), 15.0),
            Channel::CH6,
            &medium,
            &mut rng,
        );

        let window = SimDuration::from_secs(5);
        let fresh_sink = || {
            AdversarySink::new(
                FlowWindowers::for_app(
                    window,
                    DEFAULT_MIN_PACKETS,
                    FeatureMode::Full,
                    AppKind::Video,
                ),
                PrequentialEvaluator::new(
                    OnlineAdversary::new(FEATURE_DIM, AppKind::COUNT, &EnsembleConfig::default()),
                    5,
                ),
            )
        };

        let mut sliced = fresh_sink();
        let absorbed =
            captures_into_sink(sniffer.captures(), station(), AppKind::Video, &mut sliced);
        sliced.finish();

        let mut per_packet = fresh_sink();
        let mut fed = 0;
        for packet in device_packets(sniffer.captures(), station(), AppKind::Video) {
            per_packet.push(0, &packet);
            fed += 1;
        }
        per_packet.finish();

        assert_eq!(absorbed, fed);
        assert!(absorbed > 0, "the sniffer captured nothing");
        assert_eq!(sliced.windows(), per_packet.windows());
        assert_eq!(
            sliced.evaluator().timeline(),
            per_packet.evaluator().timeline(),
            "prequential timelines must match window for window"
        );
        assert_eq!(sliced.evaluator().matrix(), per_packet.evaluator().matrix());
    }

    #[test]
    fn frame_stream_feeds_wlan_injection_end_to_end() {
        // Streaming generator -> online reshaper -> frames -> sniffer:
        // the full Fig. 3 pipeline without a single materialised trace.
        let (vifs, table) = installed_vifs(11, 3);
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let session = StreamingSession::bounded(AppKind::BitTorrent, 21, 10.0);
        let frames = stream_frames(session, &mut online, &table, station(), ap());

        let medium = Medium::new(PathLossModel::deterministic(40.0, 2.0), -96.0);
        let mut sniffer = Sniffer::new(Position::new(5.0, 5.0), ap(), Channel::CH6);
        let mut rng = StdRng::seed_from_u64(1);
        let captured = inject_frames(
            frames,
            &mut sniffer,
            ap(),
            (Position::new(0.0, 0.0), 20.0),
            (Position::new(3.0, 0.0), 15.0),
            Channel::CH6,
            &medium,
            &mut rng,
        );
        assert!(captured > 0, "a nearby sniffer captures the stream");
        assert_eq!(captured, sniffer.len());
        // Per-interface reassembly: every virtual address yields a trace.
        let mut recovered = 0;
        for mac in vifs.macs() {
            recovered += captures_to_trace(sniffer.captures(), mac, None).len();
        }
        assert_eq!(recovered as u64, online.packets_seen());
    }

    #[test]
    fn captures_feed_the_live_adversary_sink() {
        // Sniffed frames → AdversarySink: the live adversary must score
        // exactly the windows the batch reassembly (captures_to_trace →
        // streamed windowing) produces for the same device.
        use crate::analysis::ensemble::EnsembleConfig;
        use crate::analysis::features::FEATURE_DIM;
        use crate::analysis::online::{OnlineAdversary, PrequentialEvaluator};
        use crate::analysis::stream::{streamed_examples, FlowWindowers};
        use crate::analysis::window::{FeatureMode, DEFAULT_MIN_PACKETS};
        use crate::wlan::channel::PathLossModel;
        use crate::wlan::time::SimDuration;

        let table = TranslationTable::new(); // physical address on the air
        let mut online =
            OnlineReshaper::new(Box::new(OrthogonalRanges::new(SizeRanges::paper_default())));
        let session = StreamingSession::bounded(AppKind::Video, 33, 45.0);
        let frames = stream_frames(session, &mut online, &table, station(), ap());

        let medium = Medium::new(PathLossModel::deterministic(40.0, 2.0), -96.0);
        let mut sniffer = Sniffer::new(Position::new(4.0, 4.0), ap(), Channel::CH6);
        let mut rng = StdRng::seed_from_u64(7);
        inject_frames(
            frames,
            &mut sniffer,
            ap(),
            (Position::new(0.0, 0.0), 20.0),
            (Position::new(3.0, 0.0), 15.0),
            Channel::CH6,
            &medium,
            &mut rng,
        );

        let window = SimDuration::from_secs(5);
        let adversary =
            OnlineAdversary::new(FEATURE_DIM, AppKind::COUNT, &EnsembleConfig::default());
        let mut sink = AdversarySink::new(
            FlowWindowers::for_app(
                window,
                DEFAULT_MIN_PACKETS,
                FeatureMode::Full,
                AppKind::Video,
            ),
            PrequentialEvaluator::new(adversary, 5),
        );
        let absorbed = captures_into_sink(sniffer.captures(), station(), AppKind::Video, &mut sink);
        sink.finish();

        let reassembled = captures_to_trace(sniffer.captures(), station(), Some(AppKind::Video));
        assert_eq!(absorbed, reassembled.len());
        assert!(absorbed > 0, "the sniffer captured nothing");
        let reference = streamed_examples(
            &mut reassembled.stream(),
            AppKind::Video,
            window,
            DEFAULT_MIN_PACKETS,
            FeatureMode::Full,
        );
        assert_eq!(sink.windows(), reference.len() as u64);
        assert_eq!(
            sink.evaluator().adversary().examples_seen(),
            reference.len() as u64
        );
    }

    #[test]
    fn captures_round_trip_back_to_traces() {
        let captures: Vec<CapturedFrame> = vec![
            CapturedFrame {
                time: SimTime::from_millis(0),
                size: 1500,
                src: ap(),
                dst: station(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -50.0,
                is_data: true,
                from_ap: true,
            },
            CapturedFrame {
                time: SimTime::from_millis(10),
                size: 200,
                src: station(),
                dst: ap(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -48.0,
                is_data: true,
                from_ap: false,
            },
            // Management frame: ignored.
            CapturedFrame {
                time: SimTime::from_millis(20),
                size: 60,
                src: station(),
                dst: ap(),
                bssid: ap(),
                channel: Channel::CH6,
                rssi_dbm: -48.0,
                is_data: false,
                from_ap: false,
            },
        ];
        let trace = captures_to_trace(&captures, station(), Some(AppKind::Video));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.app(), Some(AppKind::Video));
        assert_eq!(trace.packets()[0].direction, Direction::Downlink);
        assert_eq!(trace.packets()[1].direction, Direction::Uplink);
        let unlabelled = captures_to_trace(&captures, station(), None);
        assert_eq!(unlabelled.app(), None);
    }
}
